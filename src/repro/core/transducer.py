"""Transducer base class and shared machinery.

Every SPEX transducer consumes a list of messages (everything its
predecessor produced for the current stream event) and produces the list
it passes on.  The paper's input transducer guarantees only one document
message is in the network at a time; our network exploits that by
evaluating the DAG in topological order once per stream event (see
:mod:`repro.core.network`), which makes each transducer a simple
``list -> list`` function with internal state.

The paper's two per-transducer pushdown stores — the *depth stack* and
the *condition stack* — are fused here into one stack with one entry per
open element.  Theorem IV.2 licenses exactly this fusion ("both stacks
can be simulated by one stack, where an entry is ... composed of two
entries"), which is also what keeps these transducers within the 1-DPDT
class.  Entries are whatever the subclass needs (a scope formula for
child/closure, a condition variable for the variable-creator); the base
class only manages the pushes/pops and the instrumentation.

Dispatch is written against ``message.__class__`` rather than
``isinstance`` — this module is the innermost loop of the engine, and
the message/event class hierarchies are closed by design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..conditions.formula import Formula, conj, disj, formula_from_obj, formula_to_obj
from ..errors import EngineError
from ..xmlstream.events import (
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    Text,
)
from .messages import Activation, Close, Contribute, Doc, Message


@dataclass(slots=True)
class TransducerStats:
    """Instrumentation counters, fed into the complexity experiments.

    Attributes:
        messages: total messages processed.
        max_stack: peak stack height (bounded by stream depth + 1;
            asserted by property tests).
        max_formula_size: largest condition formula observed in an
            activation (the paper's σ).
        activations_emitted: number of activation messages produced.
    """

    messages: int = 0
    max_stack: int = 0
    max_formula_size: int = 0
    activations_emitted: int = 0


class Transducer:
    """Base class: forwards everything, manages a per-element stack.

    Subclasses override the ``on_*`` hooks.  The default behaviour of
    each hook is the paper's implicit transition: "forward document
    messages along the SPEX network without processing them, in case no
    other transition applies".
    """

    #: short name used in network diagrams and traces
    kind = "id"

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        # Hot transducers inline their hook logic into a specialized
        # feed() (see path_transducers).  Such an inlined fast path is
        # only valid for the exact class that defined it alongside its
        # hooks: a subclass overriding a hook without bringing its own
        # feed would be silently bypassed.  Restore the generic
        # hook-driven dispatch for it.
        if "feed" not in cls.__dict__ and any(
            hook in cls.__dict__
            for hook in (
                "on_start",
                "on_end",
                "on_text",
                "on_activation",
                "on_condition",
            )
        ):
            cls.feed = Transducer.feed

    def __init__(self, name: str | None = None) -> None:
        self.name = name or self.kind
        #: one entry per open element; payload meaning is subclass-defined
        self.stack: list = []
        self.pending: Formula | None = None
        self.stats = TransducerStats()
        #: binary disjunction/conjunction used to combine activation
        #: formulas; the network swaps in memoized variants
        #: (``FormulaMemo.disj``/``conj``) when the ``formula_memo``
        #: optimization knob is on
        self._disj = disj
        self._conj = conj
        #: activation-message constructor; the network swaps in a pooled
        #: acquirer when the ``message_pool`` knob is on
        self._activation = Activation

    # ------------------------------------------------------------------
    # message dispatch

    def feed(self, messages: list[Message]) -> list[Message]:
        """Process the batch of messages for the current stream event.

        The overwhelmingly common batch is a single document message that
        passes through unchanged (hooks signal that by returning
        ``None``), so that case is a dedicated branch which returns the
        *input list object* — zero allocations on the steady-state path.
        The next-most-common batch — an activation directly before its
        start tag — gets its own branch for the same reason.
        """
        stats = self.stats
        n = len(messages)
        if n == 1:
            message = messages[0]
            if message.__class__ is Doc:
                stats.messages += 1
                event = message.event
                ecls = event.__class__
                if ecls is StartElement or ecls is StartDocument:
                    produced = self.on_start(message, event)
                    depth = len(self.stack)
                    if depth > stats.max_stack:
                        stats.max_stack = depth
                elif ecls is EndElement or ecls is EndDocument:
                    produced = self.on_end(message, event)
                else:
                    produced = self.on_text(message, event)
                if produced is None:
                    return messages
                for emitted in produced:
                    if emitted.__class__ is Activation:
                        stats.activations_emitted += 1
                return produced
        elif n == 2:
            first, message = messages
            if first.__class__ is Activation and message.__class__ is Doc:
                stats.messages += 2
                size = first.formula.size
                if size > stats.max_formula_size:
                    stats.max_formula_size = size
                head = self.on_activation(first)
                event = message.event
                ecls = event.__class__
                if ecls is StartElement or ecls is StartDocument:
                    tail = self.on_start(message, event)
                    depth = len(self.stack)
                    if depth > stats.max_stack:
                        stats.max_stack = depth
                elif ecls is EndElement or ecls is EndDocument:
                    tail = self.on_end(message, event)
                else:
                    tail = self.on_text(message, event)
                if head is None:
                    if tail is None:
                        return messages
                    out = [first]
                    out.extend(tail)
                else:
                    out = list(head)
                    if tail is None:
                        out.append(message)
                    else:
                        out.extend(tail)
                for emitted in out:
                    if emitted.__class__ is Activation:
                        stats.activations_emitted += 1
                return out
        return self._feed_slow(messages)

    def _feed_slow(self, messages: Iterable[Message]) -> list[Message]:
        """General dispatch over a mixed batch (the non-fast path)."""
        out: list[Message] = []
        stats = self.stats
        for message in messages:
            stats.messages += 1
            cls = message.__class__
            if cls is Doc:
                event = message.event
                ecls = event.__class__
                if ecls is StartElement or ecls is StartDocument:
                    produced = self.on_start(message, event)
                    depth = len(self.stack)
                    if depth > stats.max_stack:
                        stats.max_stack = depth
                elif ecls is EndElement or ecls is EndDocument:
                    produced = self.on_end(message, event)
                else:
                    produced = self.on_text(message, event)
            elif cls is Activation:
                size = message.formula.size
                if size > stats.max_formula_size:
                    stats.max_formula_size = size
                produced = self.on_activation(message)
            elif cls is Contribute or cls is Close:
                produced = self.on_condition(message)
            else:  # pragma: no cover - exhaustive over message types
                raise EngineError(f"unknown message {message!r}")
            if produced is None:
                out.append(message)
            else:
                out.extend(produced)
        for message in out:
            if message.__class__ is Activation:
                stats.activations_emitted += 1
        return out

    # ------------------------------------------------------------------
    # hooks (defaults: forward unchanged)
    #
    # A hook may return ``None`` instead of ``[message]`` to mean
    # "forward the consumed message unchanged" — feed() then reuses the
    # input list instead of allocating a fresh single-element one.

    def on_activation(self, message: Activation) -> list[Message] | None:
        """Default: forward the activation unchanged (stateless pass)."""
        return None

    def on_start(
        self, message: Doc, event: StartDocument | StartElement
    ) -> list[Message] | None:
        return None

    def on_end(
        self, message: Doc, event: EndDocument | EndElement
    ) -> list[Message] | None:
        return None

    def on_text(self, message: Doc, event: Text) -> list[Message] | None:
        return None

    def on_condition(self, message: Contribute | Close) -> list[Message] | None:
        return None

    # ------------------------------------------------------------------
    # shared state helpers

    def absorb_activation(self, formula: Formula) -> None:
        """Accumulate an activation formula for the next start tag.

        Multiple activations before one tag (possible after a join)
        merge by disjunction — the normalization the paper delegates to
        the union transducer.
        """
        if self.pending is None:
            self.pending = formula
        else:
            self.pending = self._disj(self.pending, formula)

    def take_pending(self) -> Formula | None:
        """Consume the buffered activation formula, if any."""
        formula, self.pending = self.pending, None
        return formula

    def pop_entry(self):
        """Pop the entry of the element that just closed."""
        if not self.stack:
            raise EngineError(f"{self.name}: end tag with empty stack")
        return self.stack.pop()

    # ------------------------------------------------------------------
    # checkpointing

    def snapshot(self) -> dict:
        """JSON-serializable snapshot of this transducer's state.

        The base capture — stack, pending activation, instrumentation —
        covers every transducer whose stack entries are condition
        formulas (or ``None``); subclasses with extra state extend the
        dict through :meth:`_snapshot_extra`.
        """
        state = {
            "stack": [self._snapshot_entry(entry) for entry in self.stack],
            "pending": None if self.pending is None else formula_to_obj(self.pending),
            "stats": [
                self.stats.messages,
                self.stats.max_stack,
                self.stats.max_formula_size,
                self.stats.activations_emitted,
            ],
        }
        extra = self._snapshot_extra()
        if extra:
            state["extra"] = extra
        return state

    def restore(self, state: dict) -> None:
        """Replace this transducer's state with a checkpointed snapshot."""
        self.stack = [self._restore_entry(entry) for entry in state["stack"]]
        pending = state["pending"]
        self.pending = None if pending is None else formula_from_obj(pending)
        messages, max_stack, max_formula_size, activations = state["stats"]
        self.stats = TransducerStats(
            messages=messages,
            max_stack=max_stack,
            max_formula_size=max_formula_size,
            activations_emitted=activations,
        )
        self._restore_extra(state.get("extra", {}))

    def _snapshot_entry(self, entry) -> object:
        """Encode one stack entry (default: a formula or ``None``)."""
        return None if entry is None else formula_to_obj(entry)

    def _restore_entry(self, obj: object):
        """Decode one stack entry (inverse of :meth:`_snapshot_entry`)."""
        return None if obj is None else formula_from_obj(obj)

    def _snapshot_extra(self) -> dict:
        """Subclass hook: additional state beyond stack/pending/stats."""
        return {}

    def _restore_extra(self, extra: dict) -> None:
        """Subclass hook: inverse of :meth:`_snapshot_extra`."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
