"""Path-navigation transducers: input, child, closure.

These implement Secs. III.2–III.4 of the paper.  The transition tables of
Figs. 2 and 3 encode, with explicit ``m``/``l``/``s``/``ns``/``e`` depth
markers and ``waiting``/``matching``/``activated`` states, the following
invariant semantics, which is what this module implements directly over a
per-open-element stack of scope formulas:

* **child** ``CH(l)`` — an activation ``[f]`` arriving immediately before
  a start tag puts the *children* of that element into match scope under
  formula ``f``; a start tag whose label passes the test and whose parent
  is in scope emits ``[f_scope]`` just before the forwarded tag.
* **closure** ``CL(l)`` — like child, but a matched element *extends* the
  scope to its own children (chains of ``l`` steps), and an element that
  is simultaneously matched and freshly activated merges both scope
  formulas by disjunction (the paper's nested-scope rule, transition 12
  of Fig. 3, incl. the duplicate-conjunct normalization).

A stack entry is the scope formula for the children of that open element
(``None`` when they are out of scope — the paper's ``e``/plain-``l``
markers).  Equivalence with the paper's tables is exercised by unit tests
replaying Examples III.1 and III.2 message by message.
"""

from __future__ import annotations

from ..conditions.formula import TRUE
from ..errors import EngineError
from ..rpeq.ast import Label
from ..xmlstream.events import EndDocument, EndElement, StartDocument, StartElement, Text
from .messages import Activation, Doc, Message
from .transducer import Transducer

# The classes here override feed() with a dispatch specialized to the
# single-document-message batch (the steady-state case), inlining their
# own on_start/on_end logic to skip the generic hook indirection — these
# are the innermost calls of the engine.  Anything unusual (message
# batches, document boundaries) falls back to the generic
# Transducer.feed, which drives the on_* hooks; the hooks stay the
# single source of truth for the transition semantics and the
# specialized paths must match them exactly (the differential suite
# compares both pipelines answer-for-answer).


class InputTransducer(Transducer):
    """The network source ``IN`` (Sec. III.2).

    Sends an activation with the formula ``true`` on the start-document
    message — the document root is unconditionally a context node — and
    forwards every message.  Feeding messages other than document events
    into ``IN`` is an error: it is the source.
    """

    kind = "IN"

    def feed(self, messages: list[Message]) -> list[Message]:
        # Inlined fast path: the source's batch is always one document
        # message, and only the start-document event produces anything.
        if len(messages) == 1 and messages[0].__class__ is Doc:
            message = messages[0]
            self.stats.messages += 1
            if message.event.__class__ is StartDocument:
                self.stats.activations_emitted += 1
                return [self._activation(TRUE), message]
            return messages
        return Transducer.feed(self, messages)

    def on_start(
        self, message: Doc, event: StartDocument | StartElement
    ) -> list[Message] | None:
        if event.__class__ is StartDocument:
            return [self._activation(TRUE), message]
        return None

    def on_activation(self, message: Activation) -> list[Message]:
        raise EngineError("the input transducer is the network source; "
                          "it cannot receive activation messages")


class ChildTransducer(Transducer):
    """``CH(l)`` — one child step with a label test (Sec. III.3, Fig. 2)."""

    kind = "CH"

    def __init__(self, test: Label, name: str | None = None) -> None:
        super().__init__(name or f"CH({test.name})")
        self.test = test
        self._wildcard = test.is_wildcard
        self._label = test.name

    def feed(self, messages: list[Message]) -> list[Message]:
        # Inlined single-document fast path (see module comment).
        if len(messages) == 1 and messages[0].__class__ is Doc:
            message = messages[0]
            event = message.event
            ecls = event.__class__
            stats = self.stats
            stack = self.stack
            if ecls is StartElement:
                stats.messages += 1
                emit = None
                if stack:
                    scope = stack[-1]
                    if scope is not None and (
                        self._wildcard or self._label == event.label
                    ):
                        emit = scope
                pending, self.pending = self.pending, None
                stack.append(pending)
                depth = len(stack)
                if depth > stats.max_stack:
                    stats.max_stack = depth
                if emit is None:
                    return messages
                stats.activations_emitted += 1
                return [self._activation(emit), message]
            if ecls is EndElement:
                stats.messages += 1
                if not stack:
                    raise EngineError(f"{self.name}: end tag with empty stack")
                stack.pop()
                return messages
            if ecls is Text:
                stats.messages += 1
                return messages
        return Transducer.feed(self, messages)

    def on_activation(self, message: Activation) -> list[Message]:
        # Buffer until the activating start tag arrives; several
        # activations for one tag merge by disjunction.
        self.absorb_activation(message.formula)
        return []

    def on_start(
        self, message: Doc, event: StartDocument | StartElement
    ) -> list[Message] | None:
        stack = self.stack
        emit = None
        if stack and event.__class__ is StartElement:
            scope = stack[-1]
            if scope is not None and (self._wildcard or self._label == event.label):
                emit = scope
        # The element's own children are in scope iff this tag was
        # activated (paper: transitions 5/7 push the received formula).
        pending, self.pending = self.pending, None
        stack.append(pending)
        if emit is not None:
            return [self._activation(emit), message]
        return None

    def on_end(
        self, message: Doc, event: EndDocument | EndElement
    ) -> list[Message] | None:
        self.pop_entry()
        return None


class StarTransducer(Transducer):
    """``DS(l*)`` — fused Kleene closure (optimizing compiler only).

    The paper translates ``label*`` as ``SP -> CL(label+) -> JO`` with an
    epsilon bypass (Fig. 11).  This transducer implements the identical
    semantics — the activated element itself matches, plus every element
    reachable from it by a chain of ``label`` steps — in a single node,
    removing two transducer hops and a join merge from the hottest
    pattern in practice (the ``_*.`` prefix of every Sec. VI query).

    The E10 ablation benchmark compares the fused and literal forms; the
    differential test suite runs against both compilers.
    """

    kind = "DS"

    def __init__(self, test: Label, name: str | None = None) -> None:
        super().__init__(name or f"DS({test.name}*)")
        self.test = test
        self._wildcard = test.is_wildcard
        self._label = test.name

    def feed(self, messages: list[Message]) -> list[Message]:
        # Inlined single-document fast path (see module comment).
        if len(messages) == 1 and messages[0].__class__ is Doc:
            message = messages[0]
            event = message.event
            ecls = event.__class__
            stats = self.stats
            stack = self.stack
            if ecls is StartElement:
                stats.messages += 1
                pending, self.pending = self.pending, None
                emit = pending
                scope = None
                if stack:
                    parent_scope = stack[-1]
                    if parent_scope is not None and (
                        self._wildcard or self._label == event.label
                    ):
                        emit = (
                            parent_scope
                            if emit is None
                            else self._disj(emit, parent_scope)
                        )
                        scope = parent_scope
                if pending is not None:
                    scope = pending if scope is None else self._disj(scope, pending)
                stack.append(scope)
                depth = len(stack)
                if depth > stats.max_stack:
                    stats.max_stack = depth
                if emit is None:
                    return messages
                stats.activations_emitted += 1
                return [self._activation(emit), message]
            if ecls is EndElement:
                stats.messages += 1
                if not stack:
                    raise EngineError(f"{self.name}: end tag with empty stack")
                stack.pop()
                return messages
            if ecls is Text:
                stats.messages += 1
                return messages
        return Transducer.feed(self, messages)

    def on_activation(self, message: Activation) -> list[Message]:
        self.absorb_activation(message.formula)
        return []

    def on_start(
        self, message: Doc, event: StartDocument | StartElement
    ) -> list[Message] | None:
        stack = self.stack
        pending, self.pending = self.pending, None
        emit = pending  # the epsilon case: the context node itself
        scope = None
        if stack and event.__class__ is StartElement:
            parent_scope = stack[-1]
            if parent_scope is not None and (
                self._wildcard or self._label == event.label
            ):
                # Chain case: matched via one-or-more label steps.
                emit = parent_scope if emit is None else self._disj(emit, parent_scope)
                scope = parent_scope
        if pending is not None:
            # This element is a fresh context: its label-children start
            # new chains under the received formula.
            scope = pending if scope is None else self._disj(scope, pending)
        stack.append(scope)
        if emit is not None:
            return [self._activation(emit), message]
        return None

    def on_end(
        self, message: Doc, event: EndDocument | EndElement
    ) -> list[Message] | None:
        self.pop_entry()
        return None


class ClosureTransducer(Transducer):
    """``CL(l)`` — positive closure ``l+`` (Sec. III.4, Fig. 3).

    Matches elements reachable from an activating element by one or more
    child steps, every step's label passing the test.  For the wildcard
    this is the ``descendant`` axis.
    """

    kind = "CL"

    def __init__(self, test: Label, name: str | None = None) -> None:
        super().__init__(name or f"CL({test.name}+)")
        self.test = test
        self._wildcard = test.is_wildcard
        self._label = test.name

    def feed(self, messages: list[Message]) -> list[Message]:
        # Inlined single-document fast path (see module comment).
        if len(messages) == 1 and messages[0].__class__ is Doc:
            message = messages[0]
            event = message.event
            ecls = event.__class__
            stats = self.stats
            stack = self.stack
            if ecls is StartElement:
                stats.messages += 1
                emit = None
                scope = None
                if stack:
                    parent_scope = stack[-1]
                    if parent_scope is not None and (
                        self._wildcard or self._label == event.label
                    ):
                        emit = parent_scope
                        scope = parent_scope
                pending, self.pending = self.pending, None
                if pending is not None:
                    scope = pending if scope is None else self._disj(scope, pending)
                stack.append(scope)
                depth = len(stack)
                if depth > stats.max_stack:
                    stats.max_stack = depth
                if emit is None:
                    return messages
                stats.activations_emitted += 1
                return [self._activation(emit), message]
            if ecls is EndElement:
                stats.messages += 1
                if not stack:
                    raise EngineError(f"{self.name}: end tag with empty stack")
                stack.pop()
                return messages
            if ecls is Text:
                stats.messages += 1
                return messages
        return Transducer.feed(self, messages)

    def on_activation(self, message: Activation) -> list[Message]:
        self.absorb_activation(message.formula)
        return []

    def on_start(
        self, message: Doc, event: StartDocument | StartElement
    ) -> list[Message] | None:
        stack = self.stack
        emit = None
        scope = None
        if stack and event.__class__ is StartElement:
            parent_scope = stack[-1]
            if parent_scope is not None and (
                self._wildcard or self._label == event.label
            ):
                # Matched: emit, and extend the chain into this element.
                emit = parent_scope
                scope = parent_scope
        pending, self.pending = self.pending, None
        if pending is not None:
            # Freshly activated: children enter scope under the received
            # formula; a simultaneous chain extension merges by
            # disjunction (Fig. 3, transition 12 — nested scopes).
            scope = pending if scope is None else self._disj(scope, pending)
        stack.append(scope)
        if emit is not None:
            return [self._activation(emit), message]
        return None

    def on_end(
        self, message: Doc, event: EndDocument | EndElement
    ) -> list[Message] | None:
        self.pop_entry()
        return None
