"""Qualifier transducers: variable-creator, variable-filter, determinant.

A qualifier ``E[F]`` compiles (Fig. 11) into::

    ... C[E] -> VC(q) -> SP -+-> (main path continues) ----------+-> JO -> ...
                             +-> C[F] -> VF(q+) -> VD(q) --------+

* ``VC(q)`` creates one fresh condition variable per activation — one
  per *qualifier instance* — conjoins it onto the activation formula, and
  closes the variable when the activated element's scope ends (the
  paper's ``{c, false}`` message, our :class:`~repro.core.messages.Close`).
* ``VF(q+)`` projects activation formulas onto the variables owned by
  this qualifier's sub-network (its own instances plus nested
  qualifiers'), discarding foreign variables.
* ``VD(q)`` turns each arriving activation into determination evidence:
  for every DNF conjunct of the (filtered) formula it emits
  ``Contribute(c, residue)`` where ``c`` is the conjunct's instance of
  ``q`` and ``residue`` the remaining (inner-qualifier) variables.  With
  no nested qualifiers the residue is ``true`` and this is exactly the
  paper's ``{c, true}`` message of Fig. 7.
"""

from __future__ import annotations

from ..conditions.formula import (
    TRUE,
    Var,
    conj,
    dnf,
    formula_from_obj,
    formula_to_obj,
    restrict,
)
from ..conditions.store import ConditionStore, VariableAllocator
from ..xmlstream.events import EndDocument, EndElement, StartDocument, StartElement, Text
from .messages import Activation, Close, Contribute, Doc, Message
from .transducer import Transducer


class VariableCreator(Transducer):
    """``VC(q)`` (Sec. III.5.1, Fig. 6)."""

    kind = "VC"

    def __init__(
        self,
        qualifier: str,
        allocator: VariableAllocator,
        store: ConditionStore,
        close_at_document_end: bool = False,
        name: str | None = None,
    ) -> None:
        """Create a variable-creator for one qualifier.

        Args:
            close_at_document_end: defer the ``{c, false}`` close from
                the instance's scope end to ``</$>``.  Needed when the
                qualifier condition contains a ``following`` step, whose
                evidence can arrive arbitrarily long after the qualified
                element closed.
        """
        super().__init__(name or f"VC({qualifier})")
        self.qualifier = qualifier
        self._allocator = allocator
        self._store = store
        self._close_at_document_end = close_at_document_end
        self._deferred: list[Var] = []

    def feed(self, messages: list[Message]) -> list[Message]:
        # Inlined fast path for elements outside any qualifier instance:
        # no buffered activation on start (push None), a None entry on
        # end (pop, nothing to close).  Everything else — fresh
        # instances, closes, document boundaries — uses the hooks.
        if len(messages) == 1 and messages[0].__class__ is Doc:
            message = messages[0]
            ecls = message.event.__class__
            stats = self.stats
            stack = self.stack
            if ecls is StartElement and self.pending is None:
                stats.messages += 1
                stack.append(None)
                depth = len(stack)
                if depth > stats.max_stack:
                    stats.max_stack = depth
                return messages
            if ecls is EndElement and stack and stack[-1] is None:
                stats.messages += 1
                stack.pop()
                return messages
            if ecls is Text:
                stats.messages += 1
                return messages
        return Transducer.feed(self, messages)

    def on_activation(self, message: Activation) -> list[Message]:
        self.absorb_activation(message.formula)
        return []

    def on_start(
        self, message: Doc, event: StartDocument | StartElement
    ) -> list[Message] | None:
        pending = self.take_pending()
        var: Var | None = None
        if pending is not None:
            var = self._allocator.fresh(self.qualifier)
            self._store.register(var)
            self.stack.append(var)
            return [self._activation(self._conj(pending, var)), message]
        self.stack.append(var)
        return None

    def on_end(
        self, message: Doc, event: EndDocument | EndElement
    ) -> list[Message] | None:
        var = self.pop_entry()
        out: list[Message] = []
        if var is not None:
            if self._close_at_document_end:
                self._deferred.append(var)
            else:
                # Scope left: no more evidence can arrive for this
                # instance (paper: {c, false} before the end tag).
                out.append(Close(var))
        if event.__class__ is EndDocument and self._deferred:
            out.extend(Close(deferred) for deferred in self._deferred)
            self._deferred = []
        if not out:
            return None
        out.append(message)
        return out

    def _snapshot_extra(self) -> dict:
        if not self._deferred:
            return {}
        return {"deferred": [formula_to_obj(var) for var in self._deferred]}

    def _restore_extra(self, extra: dict) -> None:
        self._deferred = [formula_from_obj(obj) for obj in extra.get("deferred", [])]


class VariableFilter(Transducer):
    """``VF(q+)`` / ``VF(q-)`` (Sec. III.5.2).

    The positive filter keeps only the qualifier's own variables in
    activation formulas; the negative filter drops exactly those.  Both
    forward everything else unchanged and use no stack (FST class).
    """

    kind = "VF"

    def __init__(self, owned: frozenset[str], positive: bool = True, name: str | None = None) -> None:
        sign = "+" if positive else "-"
        super().__init__(name or f"VF({'|'.join(sorted(owned))}{sign})")
        self.owned = owned
        self.positive = positive

    def feed(self, messages: list[Message]) -> list[Message]:
        # Stateless for document messages: forward unchanged.
        if len(messages) == 1 and messages[0].__class__ is Doc:
            self.stats.messages += 1
            return messages
        return Transducer.feed(self, messages)

    def _keep(self, var: Var) -> bool:
        inside = var.qualifier in self.owned
        return inside if self.positive else not inside

    def on_activation(self, message: Activation) -> list[Message]:
        return [self._activation(restrict(message.formula, self._keep))]


class VariableDeterminant(Transducer):
    """``VD(q)`` (Sec. III.5.3, Fig. 7), generalized for nesting.

    Consumes activations (they carry proof that the qualifier path
    matched) and emits determination evidence.  Document and condition
    messages pass through so they reach the join.
    """

    kind = "VD"

    def __init__(
        self,
        qualifier: str,
        speculation_ids: set[str] | frozenset[str] = frozenset(),
        name: str | None = None,
    ) -> None:
        """Create a determinant for one qualifier.

        Args:
            speculation_ids: pseudo-qualifier ids of preceding-axis
                speculation variables (a live set shared with the
                compiler).  A conjunct without a head instance but with
                speculation variables determines *those* instead — the
                speculation means "the branch path from that past
                element onward succeeds", and a match arriving here is
                exactly that success.
        """
        super().__init__(name or f"VD({qualifier})")
        self.qualifier = qualifier
        self.speculation_ids = speculation_ids

    def feed(self, messages: list[Message]) -> list[Message]:
        # Stateless for document messages: forward unchanged.
        if len(messages) == 1 and messages[0].__class__ is Doc:
            self.stats.messages += 1
            return messages
        return Transducer.feed(self, messages)

    def on_activation(self, message: Activation) -> list[Message]:
        out: list[Message] = []
        for conjunct in dnf(message.formula):
            heads = [var for var in conjunct if var.qualifier == self.qualifier]
            if not heads:
                heads = [
                    var for var in conjunct if var.qualifier in self.speculation_ids
                ]
            if not heads:
                # The filtered formula can degenerate to TRUE when the
                # qualifier path matched unconditionally relative to an
                # already-determined instance; nothing to determine.
                continue
            for head in heads:
                residue = conj(*(var for var in conjunct if var != head))
                out.append(Contribute(head, residue if residue is not TRUE else TRUE))
        return out
