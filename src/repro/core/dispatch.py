"""Subscription dispatch — the SDI delivery layer.

The paper's motivating application (Sec. I): filter a stream according to
subscriber requirements and *disseminate* the selected information.  The
engines in :mod:`repro.core.multiquery` compute the matches; this module
adds the delivery half: callbacks per subscription, invoked progressively
as matches are decided, with per-subscriber isolation (one failing
callback never stalls the stream or the other subscribers).
"""

from __future__ import annotations

import logging
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from ..rpeq.ast import Rpeq
from ..xmlstream.events import Event
from .multiquery import SharedNetworkEngine
from .output_tx import Match

logger = logging.getLogger(__name__)

#: A subscriber callback: receives each match for its subscription.
Callback = Callable[[Match], None]


@dataclass
class DispatchReport:
    """Outcome of one dispatch run.

    Attributes:
        delivered: matches delivered per subscription id.
        failures: callback exceptions per subscription id (the stream
            continues past them; they are also logged).
    """

    delivered: dict[str, int] = field(default_factory=dict)
    failures: dict[str, list[Exception]] = field(default_factory=dict)

    @property
    def total_delivered(self) -> int:
        return sum(self.delivered.values())


class Dispatcher:
    """Routes matches of many subscriptions to their subscribers.

    Subscriptions share one prefix-shared network (one stream pass);
    fragments are collected only if at least one subscriber wants them.

    Example::

        dispatcher = Dispatcher()
        dispatcher.subscribe("rush", "_*.order[rush]", notify_ops)
        dispatcher.subscribe("all", "_*.order", archive)
        report = dispatcher.dispatch(stream)
    """

    def __init__(self, collect_events: bool = True) -> None:
        self._queries: dict[str, str | Rpeq] = {}
        self._callbacks: dict[str, list[Callback]] = {}
        self.collect_events = collect_events

    def subscribe(
        self, subscription_id: str, query: str | Rpeq, callback: Callback
    ) -> None:
        """Register a callback for a subscription (multiple allowed)."""
        existing = self._queries.get(subscription_id)
        if existing is not None and existing != query:
            raise ValueError(
                f"subscription {subscription_id!r} already registered "
                f"with a different query"
            )
        self._queries[subscription_id] = query
        self._callbacks.setdefault(subscription_id, []).append(callback)

    def unsubscribe(self, subscription_id: str) -> None:
        """Drop a subscription and all its callbacks."""
        self._queries.pop(subscription_id, None)
        self._callbacks.pop(subscription_id, None)

    def __len__(self) -> int:
        return len(self._queries)

    def dispatch(self, source: str | Iterable[Event]) -> DispatchReport:
        """One stream pass: deliver every match to its subscribers.

        Callback exceptions are caught, logged, and recorded in the
        report — dissemination to other subscribers continues.
        """
        report = DispatchReport(
            delivered={subscription: 0 for subscription in self._queries}
        )
        if not self._queries:
            return report
        engine = SharedNetworkEngine(
            dict(self._queries), collect_events=self.collect_events
        )
        for subscription_id, match in engine.run(source):
            for callback in self._callbacks.get(subscription_id, ()):
                try:
                    callback(match)
                except Exception as error:  # noqa: BLE001 - isolation
                    logger.exception(
                        "subscriber %r failed on match at position %d",
                        subscription_id,
                        match.position,
                    )
                    report.failures.setdefault(subscription_id, []).append(error)
            report.delivered[subscription_id] += 1
        return report
