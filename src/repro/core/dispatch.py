"""Subscription dispatch — the SDI delivery layer, and the fused driver.

The paper's motivating application (Sec. I): filter a stream according to
subscriber requirements and *disseminate* the selected information.  The
engines in :mod:`repro.core.multiquery` compute the matches; this module
adds the delivery half: callbacks per subscription, invoked progressively
as matches are decided, with per-subscriber isolation (one failing
callback never stalls the stream or the other subscribers).

It also hosts :func:`make_fused_runner`, the last stage of dispatch
flattening.  PR 8's ``routing`` knob compiled the *intra*-network
topological pass into straight-line code over pre-bound feed methods;
the ``fused_network`` knob extends that from per-node bound feeds to the
whole per-event driver: one closure, specialized per event class through
an event table, with the finalized network's configuration (no limits, a
single sink, pool/store/memo presence) burned in instead of re-branched
on every event.
"""

from __future__ import annotations

import logging
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..rpeq.ast import Rpeq
from ..xmlstream.events import EndDocument, Event
from .messages import Doc, Message
from .multiquery import SharedNetworkEngine
from .output_tx import Match

if TYPE_CHECKING:
    from .network import Network

logger = logging.getLogger(__name__)

_NO_MATCHES: list[Match] = []


def make_fused_runner(network: "Network") -> Callable[[Event], list[Match]]:
    """Flatten a finalized network's per-event driver into one closure.

    The returned function is a drop-in for
    :meth:`~repro.core.network.Network.process_event`, valid only for
    the configuration it was compiled against — no resource limits and a
    wired sink (checked by the caller,
    :meth:`Network._compile_exec <repro.core.network.Network>`), which
    removes the limit guards, the σ ceiling re-check and the sink
    ``None`` branch from the hot path.  Everything else is hoisted out
    of the per-event call into closure locals: the source feed, the
    pooled document message, the condition store, and the generated (or
    interpreted) topological pass.  Dispatch runs over an event-class
    table so the one remaining per-event branch — EndDocument's memo
    flush — costs a dict lookup instead of a class comparison chain.
    """
    source_feed = network.source.feed
    batch = network._src_batch
    run = network._exec
    plan = network._plan
    node_count = len(network._nodes)
    store = network.condition_store
    pool = network.activation_pool
    memo = network.formula_memo
    sink = network.sink
    assert sink is not None  # caller-checked; narrows for the closure

    def _base(event: Event) -> list[Match]:
        network._events += 1
        if pool is not None:
            pool._used = 0  # inline pool.reset()
            doc = network._doc
            if doc is None:
                doc = network._doc = Doc(event)
            else:
                # One pooled document message per network; every slot
                # read happens within this event (topological order),
                # so in-place mutation is never observed across events.
                object.__setattr__(doc, "event", event)
        else:
            doc = Doc(event)
        batch[0] = doc
        if run is not None:
            run(source_feed(batch))
        else:
            # `fused_network` without `routing`: keep the interpreted
            # topological pass (the knobs stay independently testable).
            outputs: list[list[Message]] = [None] * node_count  # type: ignore[list-item]
            outputs[0] = source_feed(batch)
            slot = 1
            for node, left, right in plan:
                if right >= 0:
                    outputs[slot] = node.feed2(outputs[left], outputs[right])
                else:
                    outputs[slot] = node.feed(outputs[left])
                slot += 1
        if store is not None and store._release_pending:
            store.end_of_event()
        results = sink.results
        if not results:
            return _NO_MATCHES
        matches = list(results)
        results.clear()
        return matches

    def _end_document(event: Event) -> list[Match]:
        matches = _base(event)
        if memo is not None:
            # Nothing outlives the document that could replay these
            # merges; dropping the strong operand refs frees the
            # retained formula DAGs between documents.
            memo.clear()
        return matches

    table: dict[type, Callable[[Event], list[Match]]] = {
        cls: _base for cls in Event.__subclasses__()
    }
    table[EndDocument] = _end_document

    def process_event(event: Event) -> list[Match]:
        handler = table.get(event.__class__)
        if handler is None:  # future event classes fall back gracefully
            handler = _end_document if event.__class__ is EndDocument else _base
        return handler(event)

    return process_event

#: A subscriber callback: receives each match for its subscription.
Callback = Callable[[Match], None]


@dataclass
class DispatchReport:
    """Outcome of one dispatch run.

    Attributes:
        delivered: matches delivered per subscription id.
        failures: callback exceptions per subscription id (the stream
            continues past them; they are also logged).
    """

    delivered: dict[str, int] = field(default_factory=dict)
    failures: dict[str, list[Exception]] = field(default_factory=dict)

    @property
    def total_delivered(self) -> int:
        return sum(self.delivered.values())


class Dispatcher:
    """Routes matches of many subscriptions to their subscribers.

    Subscriptions share one prefix-shared network (one stream pass);
    fragments are collected only if at least one subscriber wants them.

    Example::

        dispatcher = Dispatcher()
        dispatcher.subscribe("rush", "_*.order[rush]", notify_ops)
        dispatcher.subscribe("all", "_*.order", archive)
        report = dispatcher.dispatch(stream)
    """

    def __init__(self, collect_events: bool = True) -> None:
        self._queries: dict[str, str | Rpeq] = {}
        self._callbacks: dict[str, list[Callback]] = {}
        self.collect_events = collect_events

    def subscribe(
        self, subscription_id: str, query: str | Rpeq, callback: Callback
    ) -> None:
        """Register a callback for a subscription (multiple allowed)."""
        existing = self._queries.get(subscription_id)
        if existing is not None and existing != query:
            raise ValueError(
                f"subscription {subscription_id!r} already registered "
                f"with a different query"
            )
        self._queries[subscription_id] = query
        self._callbacks.setdefault(subscription_id, []).append(callback)

    def unsubscribe(self, subscription_id: str) -> None:
        """Drop a subscription and all its callbacks."""
        self._queries.pop(subscription_id, None)
        self._callbacks.pop(subscription_id, None)

    def __len__(self) -> int:
        return len(self._queries)

    def dispatch(self, source: str | Iterable[Event]) -> DispatchReport:
        """One stream pass: deliver every match to its subscribers.

        Callback exceptions are caught, logged, and recorded in the
        report — dissemination to other subscribers continues.
        """
        report = DispatchReport(
            delivered={subscription: 0 for subscription in self._queries}
        )
        if not self._queries:
            return report
        engine = SharedNetworkEngine(
            dict(self._queries), collect_events=self.collect_events
        )
        for subscription_id, match in engine.run(source):
            for callback in self._callbacks.get(subscription_id, ()):
                try:
                    callback(match)
                except Exception as error:  # noqa: BLE001 - isolation
                    logger.exception(
                        "subscriber %r failed on match at position %d",
                        subscription_id,
                        match.position,
                    )
                    report.failures.setdefault(subscription_id, []).append(error)
            report.delivered[subscription_id] += 1
        return report
