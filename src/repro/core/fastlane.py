"""Lazy-DFA fast lanes — the execution half of the lane planner.

The planner (:mod:`repro.analysis.planner`) classifies every query into
``dfa``/``hybrid``/``network``; this module makes the classification pay
at runtime.  The design follows the DFA line of related work (X-Scan,
Green et al.'s lazy DFA, YFilter's shared automaton): all fast-lane
queries of an engine are compiled into **one shared product NFA** and
determinized *lazily* — DFA states are interned on demand, keyed by the
subset of live ``(slot, nfa_state)`` pairs, with transitions memoized per
state.  The memo is bounded: past ``max_states`` interned states the
subset construction keeps running *uncached* (correct, bounded memory,
counted in :attr:`FastLaneCore.saturated_steps`), and a query whose NFA
alone exceeds the budget is demoted to the network lane at compile time
(``PLAN005``) rather than risking a state explosion mid-stream.

Three execution shapes hang off the shared core:

* :class:`FastLaneAdapter` (``dfa`` lane) — qualifier-free queries run
  entirely on the DFA.  Match candidates open when the query's slot
  accepts at a start tag and are emitted with the exact FIFO/front-
  blocking discipline of :class:`~repro.core.output_tx.OutputTransducer`,
  so positions and emission events are bit-identical to the network.
* :class:`HybridAdapter` (``hybrid`` lane, final-step qualifier) — the
  qualifier-free spine runs on the DFA; each open candidate carries its
  own lazily-determinized condition-automaton stack, advanced along its
  subtree.  A witness accept determines the candidate ``true`` at the
  witness's start tag, an undetermined candidate drops at its end tag —
  the same determination times the ``VC``/``VD`` machinery exhibits for
  this query class.
* :class:`GatedNetworkAdapter` (other ``hybrid`` shapes) — the full
  transducer network, behind a DFA gate.  The gate runs a sound
  over-approximation automaton (qualifier guards erased to ε, condition
  automata embedded as continuation branches); a subtree whose gate
  state set is empty is skipped wholesale — cold subtrees never touch
  the condition machinery — with the skipped start-tag count resynced
  into the sink's position counter so match positions stay global.

Every adapter exposes the ``Network`` surface the multi-query drivers
use (``process_event``/``snapshot``/``restore``/``sinks``/
``condition_store``/``allocator``/``clock``), so checkpoint/resume,
shards and durable service sessions keep their exactly-once guarantees
without knowing which lane a query runs on.  Snapshots carry the open
element path; restore replays it through the subset construction, so
automaton state is never serialized — only positions and candidates.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from ..baselines.nfa import Nfa, compile_nfa
from ..conditions.store import ConditionStore, VariableAllocator
from ..errors import CheckpointError, UnsupportedFeatureError
from ..rpeq.ast import (
    Concat,
    Following,
    OptionalExpr,
    Preceding,
    Qualifier,
    Rpeq,
    Star,
    Union,
)
from ..rpeq.unparse import unparse
from ..xmlstream.events import (
    DOCUMENT_LABEL,
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)
from .output_tx import Match

if TYPE_CHECKING:
    from ..analysis.planner import QueryPlan
    from .network import Network
    from .optimize import OptimizationFlags

#: Interned-state budget of the shared lazy DFA (and of each per-slot
#: condition DFA).  Generous for real query sets — the mondial/xmark
#: corpus stays under a few dozen states — while keeping an adversarial
#: union-of-closures query from growing the memo without bound.
DEFAULT_MAX_STATES = 4096

#: Shared empty result: adapters return it for the (vast majority of)
#: events that decide nothing, so the hot path allocates no list.
_NO_MATCHES: list[Match] = []

KIND_DFA = 1
KIND_HYBRID = 2
KIND_GATE = 3

_PENDING = 0
_READY = 1
_DROPPED = 2

_STATE_NAMES = {_PENDING: "pending", _READY: "ready", _DROPPED: "dropped"}
_STATE_CODES = {name: code for code, name in _STATE_NAMES.items()}


class FastLaneUnsupported(Exception):
    """A query cannot run on the fast lane (compile-time demotion)."""


# ----------------------------------------------------------------------
# query-shape analysis


def _pure(expr: Rpeq) -> bool:
    """No qualifiers and no axis steps anywhere under ``expr``."""
    return not any(
        isinstance(node, (Qualifier, Following, Preceding)) for node in expr.walk()
    )


def _parts(expr: Rpeq) -> list[Rpeq]:
    """Flatten top-level concatenations into the query's step spine."""
    if isinstance(expr, Concat):
        return _parts(expr.left) + _parts(expr.right)
    return [expr]


def _concat(parts: list[Rpeq]) -> Rpeq:
    out = parts[0]
    for part in parts[1:]:
        out = Concat(out, part)
    return out


def native_hybrid_split(expr: Rpeq) -> tuple[Rpeq, Rpeq] | None:
    """Split ``spine[condition]`` queries whose qualifier is final.

    Returns ``(spine, condition)`` when the query is a qualifier-free
    spine whose **last** step carries the only qualifier and the
    condition itself is pure — the class the native hybrid evaluator
    handles without any network.  ``None`` otherwise.
    """
    parts = _parts(expr)
    last = parts[-1]
    if not isinstance(last, Qualifier) or isinstance(last.base, Qualifier):
        return None
    if not all(_pure(part) for part in parts[:-1]):
        return None
    if not _pure(last.base) or not _pure(last.condition):
        return None
    return _concat(parts[:-1] + [last.base]), last.condition


def gate_expr(expr: Rpeq) -> Rpeq:
    """The gate's sound over-approximation of ``expr``.

    Qualifier guards are erased (the gate may never skip a subtree the
    network would act in, so guards only *add* live runs) and each
    condition becomes an optional continuation branch at its guard
    point — its states keep the gate alive exactly where the network's
    witness search would still be walking the subtree.  Accepting more
    paths than the query is fine: the gate reads aliveness, not accepts.
    """
    if isinstance(expr, Qualifier):
        return Concat(
            gate_expr(expr.base), OptionalExpr(gate_expr(expr.condition))
        )
    if isinstance(expr, Concat):
        return Concat(gate_expr(expr.left), gate_expr(expr.right))
    if isinstance(expr, Union):
        return Union(gate_expr(expr.left), gate_expr(expr.right))
    if isinstance(expr, OptionalExpr):
        return OptionalExpr(gate_expr(expr.inner))
    if isinstance(expr, (Following, Preceding)):
        raise FastLaneUnsupported(
            "axis steps are not path-regular; the gate automaton covers "
            "the core rpeq language only"
        )
    # Label / Plus / Star / Empty carry no nested conditions.
    return expr


# ----------------------------------------------------------------------
# the shared lazy product DFA


class _Candidate:
    """One potential match: an element the query's spine accepted."""

    __slots__ = ("pos", "label", "depth", "state", "done", "cstack")

    def __init__(self, pos: int, label: str, depth: int) -> None:
        self.pos = pos
        self.label = label
        self.depth = depth
        self.state = _PENDING
        self.done = False
        #: condition-DFA state stack (hybrid lane, while undetermined)
        self.cstack: list["_CondState"] | None = None


class _DfaState:
    """One interned subset-construction state of the shared product."""

    __slots__ = ("key", "trans", "accepts", "alive", "interned")

    def __init__(
        self,
        key: frozenset[tuple[int, int]],
        accepts: tuple[int, ...],
        alive: frozenset[int],
        interned: bool,
    ) -> None:
        self.key = key
        self.trans: dict[str, "_DfaState"] = {}
        self.accepts = accepts
        self.alive = alive
        self.interned = interned


class _CondState:
    """One interned state of a per-slot condition DFA."""

    __slots__ = ("key", "trans", "accept", "interned")

    def __init__(self, key: frozenset[int], accept: bool, interned: bool) -> None:
        self.key = key
        self.trans: dict[str, "_CondState"] = {}
        self.accept = accept
        self.interned = interned


def _closures(nfa: Nfa) -> dict[int, frozenset[int]]:
    """ε-closure of every state (fast-lane NFAs carry no guarded edges)."""
    states = {nfa.start, nfa.accept}
    states.update(nfa.transitions)
    states.update(t for edges in nfa.transitions.values() for _, t in edges)
    states.update(nfa.epsilon)
    states.update(t for targets in nfa.epsilon.values() for t in targets)
    out: dict[int, frozenset[int]] = {}
    for state in states:
        seen = {state}
        frontier = [state]
        while frontier:
            current = frontier.pop()
            for target in nfa.epsilon.get(current, ()):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        out[state] = frozenset(seen)
    return out


class _Slot:
    """One query's compartment in the shared core."""

    __slots__ = (
        "index",
        "query_id",
        "kind",
        "accept",
        "edges",
        "start_pairs",
        "cond_edges",
        "cond_states",
        "cond_init",
        "cond_accept",
        "active",
        "offset",
        "queue",
        "open",
        "watching",
        "out",
        "dirty",
    )

    def __init__(self, index: int, query_id: str, kind: int, nfa: Nfa) -> None:
        self.index = index
        self.query_id = query_id
        self.kind = kind
        self.accept = nfa.accept
        closures = _closures(nfa)
        # Pre-paired transition tables: state -> ((label, wildcard?,
        # ((slot, state), ...) target closure), ...) — the subset move
        # then runs on tuples alone, no attribute or method calls.
        self.edges: dict[int, tuple[tuple[str, bool, tuple[tuple[int, int], ...]], ...]] = {
            state: tuple(
                (
                    test.name,
                    test.is_wildcard,
                    tuple((index, t) for t in closures[target]),
                )
                for test, target in edges
            )
            for state, edges in nfa.transitions.items()
        }
        self.start_pairs = tuple((index, s) for s in closures[nfa.start])
        self.cond_edges: dict[int, tuple[tuple[str, bool, tuple[int, ...]], ...]] | None = None
        self.cond_states: dict[frozenset[int], _CondState] | None = None
        self.cond_init: _CondState | None = None
        self.cond_accept = -1
        self.active = True
        self.offset = 0
        self.queue: deque[_Candidate] = deque()
        self.open: list[_Candidate] = []
        self.watching: list[_Candidate] = []
        #: undelivered matches; doubles as the adapter-sink's ``results``
        self.out: deque[Match] = deque()
        self.dirty = False

    def attach_condition(self, cond: Nfa) -> None:
        closures = _closures(cond)
        self.cond_accept = cond.accept
        self.cond_edges = {
            state: tuple(
                (test.name, test.is_wildcard, tuple(closures[target]))
                for test, target in edges
            )
            for state, edges in cond.transitions.items()
        }
        self.cond_states = {}
        init_key = closures[cond.start]
        self.cond_init = _CondState(init_key, cond.accept in init_key, True)
        self.cond_states[init_key] = self.cond_init

    def reset(self, offset: int) -> None:
        self.offset = offset
        self.active = True
        self.queue.clear()
        self.open.clear()
        self.watching.clear()
        self.out.clear()
        self.dirty = False


class FastLaneCore:
    """The shared lazily-determinized product automaton of one engine.

    Drivers call :meth:`advance` exactly once per stream event; adapters
    fall back to an identity check for direct (non-driver) use.  All
    registered slots share one DFA stack along the open-element path, so
    per-event cost is one transition lookup plus per-slot work only
    where candidates actually live.
    """

    def __init__(self, max_states: int = DEFAULT_MAX_STATES) -> None:
        self.max_states = max_states
        self._slots: list[_Slot] = []
        self._by_query: dict[str, _Slot] = {}
        self._interned: dict[frozenset[tuple[int, int]], _DfaState] = {}
        self._init: _DfaState | None = None
        self._stack: list[_DfaState] = []
        #: labels of the open elements, root child first (depth 1..)
        self._path: list[str] = []
        #: StartElements seen, ever (the OU position counter, global)
        self.ecount = 0
        self.last: Event | None = None
        self._open_slots: set[_Slot] = set()
        self._watchers: set[_Slot] = set()
        #: slots with undrained matches (run()-style bulk drain only)
        self._dirty: list[_Slot] = []
        self.track_dirty = False
        #: uncached subset-construction steps past the memo bound
        self.saturated_steps = 0
        self._restored: tuple[tuple[str, ...], int] | None = None

    # ------------------------------------------------------------------
    # registration

    @property
    def states_interned(self) -> int:
        return len(self._interned)

    def register(
        self, query_id: str, kind: int, nfa: Nfa, cond: Nfa | None = None
    ) -> _Slot:
        """Add (or re-admit) one query's automaton to the product.

        Re-registration under the same ``query_id``/kind reuses the
        existing slot — its automaton part is identical, so every
        interned product state stays valid — and resets its runtime
        state with the position offset a freshly compiled network would
        start from.  Registration is cheap because states missing the
        new slot entirely remain correct: the new slot is simply dead in
        them, which is exactly what those states now mean.
        """
        existing = self._by_query.get(query_id)
        if existing is not None and existing.kind == kind:
            self._open_slots.discard(existing)
            self._watchers.discard(existing)
            existing.reset(self.ecount)
            return existing
        if nfa.size > self.max_states:
            raise FastLaneUnsupported(
                f"query automaton has {nfa.size} states, over the "
                f"determinization budget of {self.max_states}"
            )
        if cond is not None and cond.size > self.max_states:
            raise FastLaneUnsupported(
                f"condition automaton has {cond.size} states, over the "
                f"determinization budget of {self.max_states}"
            )
        slot = _Slot(len(self._slots), query_id, kind, nfa)
        if cond is not None:
            slot.attach_condition(cond)
        slot.offset = self.ecount
        self._slots.append(slot)
        self._by_query[query_id] = slot
        # The initial state must include the new slot's start closure;
        # every other interned state stays valid (see docstring).
        self._init = None
        return slot

    # ------------------------------------------------------------------
    # subset construction

    def _initial(self) -> _DfaState:
        init = self._init
        if init is None:
            pairs: set[tuple[int, int]] = set()
            for slot in self._slots:
                pairs.update(slot.start_pairs)
            key = frozenset(pairs)
            init = self._interned.get(key)
            if init is None:
                init = self._make(key)
            self._init = init
        return init

    def _step(self, state: _DfaState, label: str) -> _DfaState:
        pairs: set[tuple[int, int]] = set()
        slots = self._slots
        for si, ns in state.key:
            edges = slots[si].edges.get(ns)
            if edges:
                for name, wild, closure in edges:
                    if wild or name == label:
                        pairs.update(closure)
        key = frozenset(pairs)
        nxt = self._interned.get(key)
        if nxt is None:
            nxt = self._make(key)
        if nxt.interned and state.interned:
            state.trans[label] = nxt
        return nxt

    def _make(self, key: frozenset[tuple[int, int]]) -> _DfaState:
        slots = self._slots
        accepts = tuple(
            sorted(si for si, ns in key if ns == slots[si].accept)
        )
        alive = frozenset(si for si, _ns in key)
        interned = len(self._interned) < self.max_states
        state = _DfaState(key, accepts, alive, interned)
        if interned:
            self._interned[key] = state
        else:
            self.saturated_steps += 1
        return state

    def _cond_step(self, slot: _Slot, state: _CondState, label: str) -> _CondState:
        targets: set[int] = set()
        edges_map = slot.cond_edges
        assert edges_map is not None and slot.cond_states is not None
        for ns in state.key:
            edges = edges_map.get(ns)
            if edges:
                for name, wild, closure in edges:
                    if wild or name == label:
                        targets.update(closure)
        key = frozenset(targets)
        nxt = slot.cond_states.get(key)
        if nxt is None:
            interned = len(slot.cond_states) < self.max_states
            nxt = _CondState(key, slot.cond_accept in key, interned)
            if interned:
                slot.cond_states[key] = nxt
            else:
                self.saturated_steps += 1
        if nxt.interned and state.interned:
            state.trans[label] = nxt
        return nxt

    # ------------------------------------------------------------------
    # the per-event transition

    def advance(self, event: Event) -> None:
        """Process one stream event (exactly once per event)."""
        self.last = event
        cls = event.__class__
        if cls is Text:
            return
        if cls is StartElement:
            label = event.label  # type: ignore[attr-defined]
            self.ecount += 1
            stack = self._stack
            if not stack:
                stack.append(self._initial())
            state = stack[-1]
            nxt = state.trans.get(label)
            if nxt is None:
                nxt = self._step(state, label)
            stack.append(nxt)
            self._path.append(label)
            if self._watchers:
                self._advance_watchers(label)
            accepts = nxt.accepts
            if accepts:
                depth = len(self._path)
                ecount = self.ecount
                for si in accepts:
                    slot = self._slots[si]
                    if slot.active and slot.kind != KIND_GATE:
                        self._open_candidate(
                            slot, ecount - slot.offset, label, depth
                        )
            return
        if cls is EndElement:
            path = self._path
            if path:
                depth = len(path)
                if self._open_slots:
                    self._close_at(depth)
                if self._watchers:
                    for slot in self._watchers:
                        for cand in slot.watching:
                            cand.cstack.pop()  # type: ignore[union-attr]
                self._stack.pop()
                path.pop()
            return
        if cls is StartDocument:
            self._reset_document()
            return
        if cls is EndDocument:
            if self._open_slots:
                self._close_at(0)
            return

    def _advance_watchers(self, label: str) -> None:
        finished: list[_Slot] = []
        for slot in self._watchers:
            watching = slot.watching
            determined = False
            for cand in watching:
                cstack = cand.cstack
                assert cstack is not None
                top = cstack[-1]
                nxt = top.trans.get(label)
                if nxt is None:
                    nxt = self._cond_step(slot, top, label)
                cstack.append(nxt)
                if nxt.accept:
                    # Witness found: the candidate is determined true at
                    # the witness's start tag, exactly when the network's
                    # CH chain would fire its Contribute.
                    cand.state = _READY
                    cand.cstack = None
                    determined = True
            if determined:
                slot.watching = [c for c in watching if c.state == _PENDING]
                if not slot.watching:
                    finished.append(slot)
        for slot in finished:
            self._watchers.discard(slot)

    def _open_candidate(
        self, slot: _Slot, pos: int, label: str, depth: int
    ) -> None:
        cand = _Candidate(pos, label, depth)
        if slot.kind == KIND_DFA:
            cand.state = _READY
        else:
            init = slot.cond_init
            assert init is not None
            if init.accept:
                # ε-accepting condition ([b?], [a*]): determined at birth.
                cand.state = _READY
            else:
                cand.cstack = [init]
                slot.watching.append(cand)
                self._watchers.add(slot)
        slot.queue.append(cand)
        slot.open.append(cand)
        self._open_slots.add(slot)

    def _close_at(self, depth: int) -> None:
        for slot in list(self._open_slots):
            open_stack = slot.open
            if open_stack and open_stack[-1].depth == depth:
                cand = open_stack.pop()
                cand.done = True
                if cand.state == _PENDING:
                    # Scope closed without a witness: determined false —
                    # the VD transducer's Close at the same end tag.
                    cand.state = _DROPPED
                    cand.cstack = None
                    watching = slot.watching
                    if watching:
                        if watching[-1] is cand:
                            watching.pop()
                        else:  # pragma: no cover - deepest pending is last
                            watching.remove(cand)
                        if not watching:
                            self._watchers.discard(slot)
                if not open_stack:
                    self._open_slots.discard(slot)
                self._flush(slot)

    def _flush(self, slot: _Slot) -> None:
        """The OU emission rule: pop dropped fronts, emit ready+complete
        fronts, block on the first open or undetermined candidate."""
        queue = slot.queue
        out = slot.out
        emitted = False
        while queue:
            head = queue[0]
            state = head.state
            if state == _DROPPED:
                queue.popleft()
                continue
            if state == _READY and head.done:
                queue.popleft()
                out.append(Match(head.pos, head.label, None))
                emitted = True
                continue
            break
        if emitted and self.track_dirty and not slot.dirty:
            slot.dirty = True
            self._dirty.append(slot)

    def _reset_document(self) -> None:
        for slot in self._slots:
            if slot.open:
                slot.open.clear()
            if slot.watching:
                slot.watching.clear()
            if slot.queue:
                slot.queue.clear()
        self._open_slots.clear()
        self._watchers.clear()
        init = self._initial()
        self._stack.clear()
        self._stack.append(init)
        self._path.clear()
        accepts = init.accepts
        if accepts:
            # The query accepts ε: the virtual root $ is a candidate at
            # position 0, completing at </$> — OU's document-root rule.
            for si in accepts:
                slot = self._slots[si]
                if slot.active and slot.kind != KIND_GATE:
                    self._open_candidate(slot, 0, DOCUMENT_LABEL, 0)

    def drain_matches(self) -> list[tuple[str, Match]]:
        """Bulk-drain all pending matches (the ``run()`` hot loop)."""
        dirty = self._dirty
        out: list[tuple[str, Match]] = []
        for slot in dirty:
            slot.dirty = False
            pending = slot.out
            if pending:
                query_id = slot.query_id
                while pending:
                    out.append((query_id, pending.popleft()))
        dirty.clear()
        return out

    # ------------------------------------------------------------------
    # checkpointing

    def path_state(self) -> dict[str, object]:
        return {"path": list(self._path), "ecount": self.ecount}

    def restore_path(self, path: list[str], ecount: int) -> None:
        """Rebuild the DFA stack by replaying the open-element path.

        Called once per engine restore by the first adapter; later
        adapters only verify their snapshots agree on the position.
        Replay is side-effect free (no candidates open — those are
        restored explicitly by each adapter).
        """
        if self._restored is not None:
            if self._restored != (tuple(path), ecount):
                raise CheckpointError(
                    "fast-lane snapshots disagree on the stream position"
                )
            return
        state = self._initial()
        stack = [state]
        for label in path:
            nxt = state.trans.get(label)
            if nxt is None:
                nxt = self._step(state, label)
            stack.append(nxt)
            state = nxt
        self._stack = stack
        self._path = list(path)
        self.ecount = ecount
        self._restored = (tuple(path), ecount)


# ----------------------------------------------------------------------
# adapters: the Network surface over a core slot


class _AdapterBase:
    """Common Network-shaped surface of the DFA-backed adapters.

    The adapter is its own sink: ``sinks`` yields ``self`` and
    ``results`` is the slot's out deque, so every driver that drains
    ``network.sinks[*].results`` works unchanged.  The condition store
    and allocator are fresh empties — fast-lane queries never allocate
    condition variables, and checkpoints of empty stores round-trip.
    """

    lane = "dfa"

    def __init__(self, core: FastLaneCore, slot: _Slot, query: Rpeq) -> None:
        self._core = core
        self._slot = slot
        self.query = query
        self.condition_store = ConditionStore()
        self.allocator = VariableAllocator()
        self.clock: object | None = None
        self.limits = None
        self.buffered_events = 0

    @property
    def sinks(self) -> tuple["_AdapterBase", ...]:
        return (self,)

    @property
    def results(self) -> deque[Match]:
        return self._slot.out

    def process_event(self, event: Event) -> list[Match]:
        core = self._core
        if core.last is not event:
            # Direct (non-driver) use: nobody advanced the core yet.
            core.advance(event)
        out = self._slot.out
        if not out:
            return _NO_MATCHES
        matches = list(out)
        out.clear()
        return matches

    def deactivate(self) -> None:
        """Detach: stop opening candidates and drop in-flight state."""
        slot = self._slot
        slot.active = False
        slot.queue.clear()
        slot.open.clear()
        slot.watching.clear()
        self._core._open_slots.discard(slot)
        self._core._watchers.discard(slot)

    # -- checkpointing --------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        core = self._core
        slot = self._slot
        return {
            "fastlane": {
                "kind": slot.kind,
                "query": unparse(self.query),
                "path": list(core._path),
                "ecount": core.ecount,
                "offset": slot.offset,
                "candidates": [
                    [c.pos, c.label, c.depth, _STATE_NAMES[c.state], c.done]
                    for c in slot.queue
                ],
                "pending_out": [[m.position, m.label] for m in slot.out],
            }
        }

    def restore(self, snap: dict[str, object]) -> None:
        payload = snap.get("fastlane")
        if not isinstance(payload, dict):
            raise CheckpointError(
                "network-lane snapshot cannot restore into a fast-lane "
                "runner; re-run with the checkpoint's optimization flags"
            )
        core = self._core
        slot = self._slot
        if payload.get("kind") != slot.kind:
            raise CheckpointError(
                "fast-lane snapshot kind does not match the compiled lane"
            )
        path = [str(p) for p in payload["path"]]  # type: ignore[index]
        core.restore_path(path, int(payload["ecount"]))  # type: ignore[arg-type]
        slot.reset(int(payload["offset"]))  # type: ignore[arg-type]
        open_by_depth: dict[int, _Candidate] = {}
        for pos, label, depth, state_name, done in payload["candidates"]:  # type: ignore[misc]
            cand = _Candidate(int(pos), str(label), int(depth))
            cand.state = _STATE_CODES[str(state_name)]
            cand.done = bool(done)
            slot.queue.append(cand)
            if not cand.done:
                open_by_depth[cand.depth] = cand
                slot.open.append(cand)
        if slot.open:
            slot.open.sort(key=lambda c: c.depth)
            core._open_slots.add(slot)
        if slot.kind == KIND_HYBRID:
            self._rebuild_cstacks(open_by_depth)
        for pos, label in payload["pending_out"]:  # type: ignore[misc]
            slot.out.append(Match(int(pos), str(label), None))

    def _rebuild_cstacks(self, open_by_depth: dict[int, _Candidate]) -> None:
        """Recompute condition stacks by replaying path labels below each
        pending open candidate — the stacks are pure label functions."""
        core = self._core
        slot = self._slot
        for cand in slot.open:
            if cand.state != _PENDING:
                continue
            init = slot.cond_init
            assert init is not None
            cstack = [init]
            state = init
            for label in core._path[cand.depth :]:
                nxt = state.trans.get(label)
                if nxt is None:
                    nxt = core._cond_step(slot, state, label)
                cstack.append(nxt)
                state = nxt
                if state.accept:  # pragma: no cover - snapshot said pending
                    raise CheckpointError(
                        "pending fast-lane candidate replays to accepted"
                    )
            cand.cstack = cstack
            slot.watching.append(cand)
        if slot.watching:
            core._watchers.add(slot)


class FastLaneAdapter(_AdapterBase):
    """dfa-lane runner: the query lives entirely in the shared DFA."""

    lane = "dfa"


class HybridAdapter(_AdapterBase):
    """Native hybrid runner: DFA spine + per-candidate condition DFA."""

    lane = "hybrid"


class GatedNetworkAdapter:
    """A full transducer network behind a DFA subtree gate.

    The wrapped network sees exactly the events of subtrees where the
    gate's over-approximation automaton is alive.  Skipped subtrees are
    balanced (we skip from a dead start tag to its matching end tag), so
    the network's depth bookkeeping stays consistent; its *position*
    counter is resynced via
    :meth:`~repro.core.output_tx.OutputTransducer.advance_positions`
    with the count of skipped start tags before the next fed event.
    """

    lane = "gated"

    def __init__(
        self, core: FastLaneCore, slot: _Slot, network: "Network", query: Rpeq
    ) -> None:
        self._core = core
        self._slot = slot
        self._network = network
        self.query = query
        #: >0 — depth inside a skipped subtree (balanced-tag counter)
        self._skip = 0
        #: start tags skipped and not yet resynced into the sink
        self._skipped = 0

    @property
    def sinks(self) -> tuple[object, ...]:
        return self._network.sinks

    @property
    def condition_store(self) -> ConditionStore:
        return self._network.condition_store

    @property
    def allocator(self) -> VariableAllocator:
        return self._network.allocator

    @property
    def clock(self) -> object | None:
        return self._network.clock

    @clock.setter
    def clock(self, value: object | None) -> None:
        self._network.clock = value

    @property
    def limits(self) -> object | None:
        return self._network.limits

    @property
    def buffered_events(self) -> int:
        return sum(s.buffered_events for s in self._network.sinks)

    def process_event(self, event: Event) -> list[Match]:
        core = self._core
        if core.last is not event:
            core.advance(event)
        cls = event.__class__
        if self._skip:
            if cls is StartElement:
                self._skip += 1
                self._skipped += 1
            elif cls is EndElement:
                self._skip -= 1
            return _NO_MATCHES
        if cls is StartElement:
            # core.advance already pushed this tag; dead here means dead
            # for every continuation of the query, condition search
            # included — the whole subtree is irrelevant.
            if self._slot.index not in core._stack[-1].alive:
                self._skip = 1
                self._skipped += 1
                return _NO_MATCHES
        if self._skipped:
            for sink in self._network.sinks:
                sink.advance_positions(self._skipped)
            self._skipped = 0
        return self._network.process_event(event)

    def deactivate(self) -> None:
        self._slot.active = False

    def snapshot(self) -> dict[str, object]:
        return {
            "fastlane": {
                "kind": KIND_GATE,
                "path": list(self._core._path),
                "ecount": self._core.ecount,
                "skip": self._skip,
                "skipped": self._skipped,
            },
            "network": self._network.snapshot(),
        }

    def restore(self, snap: dict[str, object]) -> None:
        payload = snap.get("fastlane")
        if not isinstance(payload, dict) or payload.get("kind") != KIND_GATE:
            raise CheckpointError(
                "snapshot lane does not match the gated fast-lane runner"
            )
        path = [str(p) for p in payload["path"]]  # type: ignore[index]
        self._core.restore_path(path, int(payload["ecount"]))  # type: ignore[arg-type]
        self._skip = int(payload["skip"])  # type: ignore[arg-type]
        self._skipped = int(payload["skipped"])  # type: ignore[arg-type]
        self._network.restore(snap["network"])  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# routing


def build_lane_runner(
    core: FastLaneCore,
    query_id: str,
    expr: Rpeq,
    plan: "QueryPlan | None",
    flags: "OptimizationFlags",
    network_factory: Callable[[], "Network"],
) -> tuple[object | None, str, str | None]:
    """Compile one query onto its planned execution lane.

    Returns ``(runner, lane, demotion_reason)``: ``runner`` is ``None``
    when the query must run on the plain network (lane ``"network"``),
    and ``demotion_reason`` is set when the *plan* wanted a fast lane
    but compilation demoted it (surfaced as a ``PLAN005`` diagnostic).
    """
    if plan is None:
        return None, "network", None
    lane = plan.lane
    if lane == "dfa" and flags.dfa_lane:
        try:
            nfa = compile_nfa(expr, allow_qualifiers=False)
            slot = core.register(query_id, KIND_DFA, nfa)
        except (FastLaneUnsupported, UnsupportedFeatureError) as exc:
            return None, "network", str(exc)
        return FastLaneAdapter(core, slot, expr), "dfa", None
    if lane == "hybrid" and flags.hybrid_gate:
        split = native_hybrid_split(expr)
        if split is not None:
            spine, condition = split
            try:
                nfa = compile_nfa(spine, allow_qualifiers=False)
                cond = compile_nfa(condition, allow_qualifiers=False)
                slot = core.register(query_id, KIND_HYBRID, nfa, cond)
            except (FastLaneUnsupported, UnsupportedFeatureError) as exc:
                return None, "network", str(exc)
            return HybridAdapter(core, slot, expr), "hybrid", None
        try:
            over = gate_expr(expr)
            nfa = compile_nfa(over, allow_qualifiers=False)
            slot = core.register(query_id, KIND_GATE, nfa)
        except (FastLaneUnsupported, UnsupportedFeatureError) as exc:
            return None, "network", str(exc)
        return GatedNetworkAdapter(core, slot, network_factory(), expr), "gated", None
    return None, "network", None
