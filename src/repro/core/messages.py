"""SPEX network messages (paper, Definition 2).

Three kinds of messages circulate in a SPEX network:

* **document messages** — the stream events themselves, wrapped in
  :class:`Doc`;
* **activation messages** ``[f]`` — :class:`Activation`; an activation
  immediately precedes the start tag of the element it activates and
  carries the condition formula the downstream match depends on;
* **condition determination messages** ``{c, v}`` — here split into
  :class:`Contribute` (evidence that variable ``c`` holds; the paper's
  ``{c, true}``, generalized to carry a residual formula for nested
  qualifiers) and :class:`Close` (the variable's scope ended; the paper's
  ``{c, false}``, after which ``c`` is false unless evidence arrived).

Messages are small immutable objects; transducers exchange lists of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..conditions.formula import Formula, Var
from ..xmlstream.events import Event


@dataclass(frozen=True, slots=True)
class Message:
    """Base class of all SPEX network messages."""


@dataclass(frozen=True, slots=True)
class Doc(Message):
    """A document message wrapping one stream event."""

    event: Event

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return str(self.event)


@dataclass(frozen=True, slots=True)
class Activation(Message):
    """``[f]`` — activate downstream transducers under condition ``f``."""

    formula: Formula

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.formula}]"


@dataclass(frozen=True, slots=True)
class Contribute(Message):
    """``{c, evidence}`` — formula ``evidence`` implies variable ``c``.

    With ``evidence == TRUE`` this is exactly the paper's ``{c, true}``.
    """

    var: Var
    evidence: Formula

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{{{self.var}, {self.evidence}}}"


@dataclass(frozen=True, slots=True)
class Close(Message):
    """Scope of variable ``c`` ended — the paper's ``{c, false}``."""

    var: Var

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{{{self.var}, closed}}"


class ActivationPool:
    """Per-network recycler of :class:`Activation` objects.

    An activation lives for exactly one stream event — emitted by one
    transducer, absorbed (or forwarded to a sink) before the next event
    enters the network — so the network can hand out the same small set
    of objects every event instead of allocating fresh ones
    (``message_pool`` optimization knob).

    Two properties the engine relies on:

    * ``acquire`` never returns the same object twice within one event
      (the join deduplicates by object identity, ``id(message)``);
    * pooled objects are real ``Activation`` instances mutated through
      ``object.__setattr__``, so value equality and ``repr`` behave
      exactly like fresh messages.

    The network calls :meth:`reset` at the start of every event.
    """

    __slots__ = ("_items", "_used")

    def __init__(self) -> None:
        self._items: list[Activation] = []
        self._used = 0

    def acquire(self, formula: Formula) -> Activation:
        """An activation carrying ``formula``, unique within this event."""
        used = self._used
        items = self._items
        if used < len(items):
            message = items[used]
            object.__setattr__(message, "formula", formula)
        else:
            message = Activation(formula)
            items.append(message)
        self._used = used + 1
        return message

    def reset(self) -> None:
        """Start of a new event: every pooled object is reusable again."""
        self._used = 0

    def __len__(self) -> int:  # pragma: no cover - debugging aid
        return len(self._items)
