"""SPEX network messages (paper, Definition 2).

Three kinds of messages circulate in a SPEX network:

* **document messages** — the stream events themselves, wrapped in
  :class:`Doc`;
* **activation messages** ``[f]`` — :class:`Activation`; an activation
  immediately precedes the start tag of the element it activates and
  carries the condition formula the downstream match depends on;
* **condition determination messages** ``{c, v}`` — here split into
  :class:`Contribute` (evidence that variable ``c`` holds; the paper's
  ``{c, true}``, generalized to carry a residual formula for nested
  qualifiers) and :class:`Close` (the variable's scope ended; the paper's
  ``{c, false}``, after which ``c`` is false unless evidence arrived).

Messages are small immutable objects; transducers exchange lists of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..conditions.formula import Formula, Var
from ..xmlstream.events import Event


@dataclass(frozen=True, slots=True)
class Message:
    """Base class of all SPEX network messages."""


@dataclass(frozen=True, slots=True)
class Doc(Message):
    """A document message wrapping one stream event."""

    event: Event

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return str(self.event)


@dataclass(frozen=True, slots=True)
class Activation(Message):
    """``[f]`` — activate downstream transducers under condition ``f``."""

    formula: Formula

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.formula}]"


@dataclass(frozen=True, slots=True)
class Contribute(Message):
    """``{c, evidence}`` — formula ``evidence`` implies variable ``c``.

    With ``evidence == TRUE`` this is exactly the paper's ``{c, true}``.
    """

    var: Var
    evidence: Formula

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{{{self.var}, {self.evidence}}}"


@dataclass(frozen=True, slots=True)
class Close(Message):
    """Scope of variable ``c`` ended — the paper's ``{c, false}``."""

    var: Var

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{{{self.var}, closed}}"
