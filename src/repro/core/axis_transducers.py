"""Extended navigation: following / preceding transducers.

The paper's prototype "supports also other XPath navigational
capabilities, i.e. following and preceding" (Sec. I); this module
reproduces them inside the transducer-network model:

* ``FO(l)`` — *following*: when an activated context element closes,
  its activation formula joins an accumulated *after* disjunction; every
  later start tag passing the label test matches under it.  Pure
  1-DPDT: one stack (is-this-entry-a-context markers) plus one formula.

* ``PR(l)`` — *preceding*: inherently a past axis.  Every ``l`` element
  is speculatively matched under a fresh condition variable (exactly the
  qualifier-instance machinery); when a context activation ``[f]``
  arrives later, the variables of elements that have already *closed*
  receive ``f`` as evidence, and everything still unresolved is closed
  at document end.  Candidates therefore buffer until a context shows up
  — the unavoidable memory price of a past axis on a stream, and the
  reason the paper's core language sticks to forward steps.
"""

from __future__ import annotations

from ..conditions.formula import (
    FALSE,
    TRUE,
    Formula,
    Var,
    conj,
    disj,
    dnf,
    formula_from_obj,
    formula_to_obj,
    substitute,
)
from ..conditions.store import ConditionStore, VariableAllocator
from ..rpeq.ast import Label
from ..xmlstream.events import EndDocument, EndElement, StartDocument, StartElement
from .messages import Activation, Close, Contribute, Doc, Message
from .transducer import Transducer


class FollowingTransducer(Transducer):
    """``FO(l)`` — matches elements after an activated context closes.

    The accumulated *after* disjunction outlives element scopes (it stays
    live until the stream ends), so unlike stack-held formulas it can
    reference condition variables past their scope close.  The transducer
    therefore subscribes to the store: determinations substitute resolved
    variables out of the formula, and a retainer blocks the store from
    releasing any variable the formula still mentions.
    """

    kind = "FO"

    def __init__(
        self,
        test: Label,
        store: ConditionStore,
        branch: bool = False,
        name: str | None = None,
    ) -> None:
        """Create a following-axis transducer.

        Args:
            branch: ``True`` inside a qualifier condition.  There the
                *after* formula is a carrier of per-instance variables
                destined for the determinant, so determinations prune it
                disjunct by disjunct (dropping decided disjuncts) rather
                than substituting values — a substitution to ``true``
                would collapse the disjunction and erase the identity of
                the still-undetermined sibling instances.
        """
        super().__init__(name or f"FO({test.name})")
        self.test = test
        self.branch = branch
        self._store = store
        self._after: Formula | None = None
        store.subscribe(self._on_determined)
        store.add_retainer(self._retains)

    def _on_determined(self, _determined: list[Var]) -> None:
        after = self._after
        if after is None:
            return
        if not self.branch:
            residual = substitute(after, self._store.value)
            self._after = None if residual is FALSE else residual
            return
        from ..conditions.formula import Or, evaluate

        terms = after.terms if isinstance(after, Or) else (after,)
        kept = []
        for term in terms:
            value = evaluate(term, self._store.value)
            if value is True:
                continue  # its instances are determined: nothing to add
            if value is False:
                continue  # dead disjunct
            kept.append(term)
        self._after = disj(*kept) if kept else None

    def _retains(self, var: Var) -> bool:
        return self._after is not None and var in self._after.variables()

    def on_activation(self, message: Activation) -> list[Message]:
        self.absorb_activation(message.formula)
        return []

    def on_start(
        self, message: Doc, event: StartDocument | StartElement
    ) -> list[Message] | None:
        emit = None
        if (
            self._after is not None
            and event.__class__ is StartElement
            and self.test.matches(event.label)
        ):
            emit = self._after
        # Remember whether this element is a context: its subtree is NOT
        # in its own following set; the formula activates at its end tag.
        self.stack.append(self.take_pending())
        if emit is not None:
            return [self._activation(emit), message]
        return None

    def on_end(
        self, message: Doc, event: EndDocument | EndElement
    ) -> list[Message] | None:
        formula = self.pop_entry()
        if formula is not None:
            self._after = (
                formula if self._after is None else disj(self._after, formula)
            )
        return None

    def _snapshot_extra(self) -> dict:
        if self._after is None:
            return {}
        return {"after": formula_to_obj(self._after)}

    def _restore_extra(self, extra: dict) -> None:
        after = extra.get("after")
        self._after = None if after is None else formula_from_obj(after)


class PrecedingTransducer(Transducer):
    """``PR(l)`` — matches elements that closed before a context starts."""

    kind = "PR"

    def __init__(
        self,
        test: Label,
        qualifier: str,
        allocator: VariableAllocator,
        store: ConditionStore,
        branch_head: str | None = None,
        speculation_ids: set[str] | frozenset[str] = frozenset(),
        name: str | None = None,
    ) -> None:
        """Create a preceding-axis transducer.

        Args:
            branch_head: ``None`` on a main path.  Inside a qualifier
                condition it is the enclosing qualifier's id, switching
                the transducer to *pairing* mode: a context activation
                pairs its head instance with every already-closed
                speculation (the head holds if the branch path from that
                past element holds).
            speculation_ids: live set of preceding pseudo-qualifier ids
                (shared with the compiler), used as pairing fallback for
                chained axis steps.
        """
        super().__init__(name or f"PR({test.name})")
        self.test = test
        #: pseudo-qualifier id owning this transducer's variables, so
        #: enclosing variable-filters keep them in branch formulas
        self.qualifier = qualifier
        self.branch_head = branch_head
        self.speculation_ids = speculation_ids
        self._allocator = allocator
        self._store = store
        #: variables of matching elements whose end tag has passed and
        #: that no unconditional context has confirmed yet
        self._closed_vars: list[Var] = []
        #: all variables awaiting document end (for the final closes)
        self._unresolved: list[Var] = []

    def on_activation(self, message: Activation) -> list[Message]:
        """A context is about to start: earlier-closed elements match."""
        if self.branch_head is not None:
            return self._pair_with_head(message.formula)
        out: list[Message] = []
        formula = message.formula
        still_open: list[Var] = []
        for var in self._closed_vars:
            if self._store.value(var) is not None:
                continue  # already settled by an earlier context
            out.append(Contribute(var, formula))
            if formula is not TRUE:
                still_open.append(var)
        self._closed_vars = still_open
        return out

    def _pair_with_head(self, formula: Formula) -> list[Message]:
        """Qualifier-branch mode: head := OR over closed speculations.

        For every DNF conjunct of the incoming context formula, the head
        instance (or, for chained axis steps, the upstream speculation)
        receives one contribution per already-closed element: *head
        holds if the branch path from that element holds* (plus the
        conjunct's remaining variables, which is safe — they gate every
        candidate carrying the head anyway).
        """
        out: list[Message] = []
        live = [
            var for var in self._closed_vars if self._store.value(var) is None
        ]
        # Also pair speculations already proven true (their path already
        # succeeded): they contribute TRUE-strength evidence.
        proven = [
            var
            for var in self._closed_vars
            if self._store.value(var) is True
        ]
        self._closed_vars = live + proven
        if not live and not proven:
            return out
        for conjunct in dnf(formula):
            targets = [v for v in conjunct if v.qualifier == self.branch_head]
            if not targets:
                targets = [
                    v for v in conjunct if v.qualifier in self.speculation_ids
                ]
            for target in targets:
                residue = [v for v in conjunct if v != target]
                for speculation in live + proven:
                    out.append(
                        Contribute(target, conj(*residue, speculation))
                    )
        return out

    def on_start(
        self, message: Doc, event: StartDocument | StartElement
    ) -> list[Message] | None:
        var = None
        if event.__class__ is StartElement and self.test.matches(event.label):
            var = self._allocator.fresh(self.qualifier)
            self._store.register(var)
            self._unresolved.append(var)
        self.stack.append(var)
        if var is not None:
            return [self._activation(var), message]
        return None

    def on_end(
        self, message: Doc, event: EndDocument | EndElement
    ) -> list[Message] | None:
        var = self.pop_entry()
        out: list[Message] = []
        if var is not None:
            # The element has now fully ended; later contexts confirm it.
            self._closed_vars.append(var)
        if event.__class__ is EndDocument:
            # No more contexts can arrive: close every open speculation.
            for pending in self._unresolved:
                out.append(Close(pending))
            self._unresolved = []
            self._closed_vars = []
        if not out:
            return None
        out.append(message)
        return out

    def _snapshot_extra(self) -> dict:
        extra: dict = {}
        if self._closed_vars:
            extra["closed_vars"] = [formula_to_obj(v) for v in self._closed_vars]
        if self._unresolved:
            extra["unresolved"] = [formula_to_obj(v) for v in self._unresolved]
        return extra

    def _restore_extra(self, extra: dict) -> None:
        self._closed_vars = [
            formula_from_obj(obj) for obj in extra.get("closed_vars", [])
        ]
        self._unresolved = [
            formula_from_obj(obj) for obj in extra.get("unresolved", [])
        ]
