"""SPEX transducer networks (paper, Definition 3).

A network is a DAG of transducers with one source (the input transducer)
and one sink (the output transducer).  Because the input transducer
forwards only one stream message at a time, evaluation is a simple pass
over the DAG in topological order once per stream event: each node maps
the concatenated output of its predecessors to its own output list, join
nodes merge two predecessor lists.

The network object also centralizes instrumentation: per-transducer stack
peaks and formula sizes roll up into :class:`NetworkStats` for the
complexity experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import EngineError, ResourceLimitError
from ..limits import ResourceLimits
from .clock import SYSTEM_CLOCK, Clock
from ..xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
)
from ..conditions.formula import FormulaMemo
from .flow_transducers import JoinTransducer, SplitTransducer
from .messages import ActivationPool, Doc, Message
from .optimize import ALL_OPTIMIZATIONS, OptimizationFlags, as_flags
from .output_tx import Match, OutputTransducer
from .path_transducers import InputTransducer
from .transducer import Transducer


@dataclass
class NetworkStats:
    """Aggregated instrumentation over a whole network.

    Attributes:
        degree: number of transducers (Lemma V.1: linear in query size).
        events: stream events processed.
        messages: total messages processed across all transducers.
        max_stack: deepest per-transducer stack (≤ stream depth + 1).
        max_formula_size: largest condition formula observed (σ).
    """

    degree: int = 0
    events: int = 0
    messages: int = 0
    max_stack: int = 0
    max_formula_size: int = 0
    per_transducer: dict[str, dict[str, int]] = field(default_factory=dict)


class Network:
    """A wired SPEX network, ready to consume one stream."""

    def __init__(
        self,
        source: InputTransducer,
        sink: OutputTransducer | None = None,
        limits: ResourceLimits | None = None,
        flags: OptimizationFlags | bool | None = None,
    ) -> None:
        """Create a network rooted at ``source``.

        ``sink`` is the network's primary output transducer; multi-sink
        networks (conjunctive queries, Sec. VII) pass ``None`` and drain
        their output transducers directly.  ``limits`` (when set and not
        unbounded) arms the per-event resource guards — depth, formula
        size and per-document event/time budgets.  ``flags`` selects the
        runtime optimization knobs (:mod:`repro.core.optimize`) applied
        at :meth:`finalize` time; the default is every knob on.
        """
        self.source = source
        self.sink = sink
        self.limits = limits if limits is not None and not limits.unbounded else None
        self.flags = ALL_OPTIMIZATIONS if flags is None else as_flags(flags)
        #: time source for the per-document wall-clock budget; the
        #: serving layer swaps in its (possibly fake) clock so all
        #: deadline machinery shares one notion of "now"
        self.clock: Clock = SYSTEM_CLOCK
        self._depth = 0
        self._doc_events = 0
        self._doc_deadline: float | None = None
        #: set by the compiler; drives deferred variable release at the
        #: end of every event (see ConditionStore.end_of_event)
        self.condition_store = None
        #: set by the compiler; checkpointed so resuming continues the
        #: condition-variable uid sequence instead of restarting it
        self.allocator = None
        self._nodes: list[Transducer] = [source]
        self._predecessors: dict[int, list[Transducer]] = {id(source): []}
        self._finalized = False
        self._events = 0
        # Execution plan compiled by finalize(): per node, its index and
        # the indices of its predecessors' output slots.
        self._plan: list[tuple[Transducer, int, int]] = []
        # Flat dispatch function compiled by finalize() under the
        # `routing` knob: the whole topological pass as one generated
        # straight-line function over pre-bound feed methods.  Unlike
        # _plan (which mirrors the wiring 1:1 and is what the static
        # verifier checks), it may bypass identity nodes by aliasing.
        self._exec = None
        self._src_batch: list[Message] = [None]  # type: ignore[list-item]
        #: per-network normalization memo (``formula_memo`` knob)
        self.formula_memo: FormulaMemo | None = None
        #: per-network activation recycler (``message_pool`` knob)
        self.activation_pool: ActivationPool | None = None
        self._doc: Doc | None = None

    # ------------------------------------------------------------------
    # construction

    def add(self, transducer: Transducer, *predecessors: Transducer) -> Transducer:
        """Insert a transducer downstream of ``predecessors``.

        Nodes must be added in topological order (the compiler does this
        naturally); join transducers take exactly two predecessors, all
        others exactly one.
        """
        if self._finalized:
            raise EngineError("network already finalized")
        expected = 2 if isinstance(transducer, JoinTransducer) else 1
        if len(predecessors) != expected:
            raise EngineError(
                f"{transducer.name} needs {expected} predecessor(s), got "
                f"{len(predecessors)}"
            )
        known = {id(node) for node in self._nodes}
        for predecessor in predecessors:
            if id(predecessor) not in known:
                raise EngineError(
                    f"predecessor {predecessor.name} not in network (nodes "
                    f"must be added in topological order)"
                )
        self._nodes.append(transducer)
        self._predecessors[id(transducer)] = list(predecessors)
        return transducer

    def finalize(self) -> None:
        """Wire the sink and freeze the topology."""
        if self._finalized:
            raise EngineError("network already finalized")
        if self.sink is not None and self.sink not in self._nodes:
            raise EngineError("finalize() requires the sink to be added")
        self._finalized = True
        # Give every node a unique display name for traces.
        counts: dict[str, int] = {}
        for node in self._nodes:
            counts[node.name] = counts.get(node.name, 0) + 1
            if counts[node.name] > 1:
                node.name = f"{node.name}#{counts[node.name]}"
        # Compile the per-event execution plan: (node, left_slot,
        # right_slot) with slot -1 meaning "no predecessor" (the source)
        # and right_slot -1 meaning "single input".
        index_of = {id(node): index for index, node in enumerate(self._nodes)}
        self._plan = []
        for node in self._nodes[1:]:
            predecessors = self._predecessors[id(node)]
            left = index_of[id(predecessors[0])]
            right = index_of[id(predecessors[1])] if len(predecessors) == 2 else -1
            self._plan.append((node, left, right))
        self._compile_exec()

    def _compile_exec(self) -> None:
        """Apply the runtime optimization knobs to the frozen topology.

        ``formula_memo`` and ``message_pool`` rewire every node's
        ``_disj``/``_conj``/``_activation`` to per-network shared
        instances; ``routing`` flattens ``_plan`` into a dispatch table
        of pre-bound feed methods, aliasing identity splits out of the
        per-event loop entirely (the network fans out by handing the same
        output list to both successors anyway).
        """
        flags = self.flags
        if flags.formula_memo:
            memo = FormulaMemo()
            self.formula_memo = memo
            for node in self._nodes:
                node._disj = memo.disj
                node._conj = memo.conj
        if flags.message_pool:
            pool = ActivationPool()
            self.activation_pool = pool
            for node in self._nodes:
                node._activation = pool.acquire
        if flags.routing:
            self._compile_routing()
        else:
            self._exec = None
        if flags.fused_network and self.limits is None and self.sink is not None:
            # Flatten the whole per-event driver into one closure (the
            # instance attribute shadows the method).  Limit-armed
            # networks keep the full method: the guards must see every
            # event.
            from .dispatch import make_fused_runner

            self.process_event = make_fused_runner(self)  # type: ignore[method-assign]

    def _compile_routing(self) -> None:
        # Flatten the plan into straight-line code: one generated
        # function whose body is the topological pass with every feed
        # method pre-bound and every slot a local variable.  This strips
        # the interpreted loop (tuple unpacking, list indexing, arity
        # branch) from the hottest few microseconds of the engine.
        alias: dict[int, int] = {}
        namespace: dict[str, object] = {}
        lines = ["def _run(s0):"]
        slot = 1
        for node, left, right in self._plan:
            lname = f"s{alias.get(left, left)}"
            if right >= 0:
                rname = f"s{alias.get(right, right)}"
                namespace[f"f{slot}"] = node.feed2
                lines.append(f"    s{slot} = f{slot}({lname}, {rname})")
            elif node.__class__ is SplitTransducer:
                # Identity node: downstream reads go straight to its
                # input (the network fans one list out to both
                # successors anyway).
                alias[slot] = alias.get(left, left)
            else:
                namespace[f"f{slot}"] = node.feed
                lines.append(f"    s{slot} = f{slot}({lname})")
            slot += 1
        lines.append("    return None")
        exec("\n".join(lines), namespace)  # noqa: S102 - trusted codegen
        self._exec = namespace["_run"]

    @property
    def nodes(self) -> list[Transducer]:
        return list(self._nodes)

    @property
    def finalized(self) -> bool:
        """Whether :meth:`finalize` has frozen the topology."""
        return self._finalized

    @property
    def degree(self) -> int:
        """Number of transducers — the paper's network degree."""
        return len(self._nodes)

    @property
    def sinks(self) -> list[OutputTransducer]:
        """All output transducers (one per head variable for CQs)."""
        return [node for node in self._nodes if isinstance(node, OutputTransducer)]

    def predecessors_of(self, node: Transducer) -> list[Transducer]:
        return list(self._predecessors[id(node)])

    def describe(self) -> str:
        """Human-readable wiring, one node per line (used by the CLI)."""
        lines = []
        for node in self._nodes:
            preds = self._predecessors[id(node)]
            arrow = ", ".join(p.name for p in preds) or "(source)"
            lines.append(f"{node.name} <- {arrow}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # execution

    def process_event(self, event: Event) -> list[Match]:
        """Push one stream event through the network; return new matches.

        Raises:
            ResourceLimitError: a configured :class:`ResourceLimits`
                bound (depth, per-document events/time, formula size)
                was exceeded by this event.
        """
        if not self._finalized:
            raise EngineError("network not finalized")
        self._events += 1
        if self.limits is not None:
            self._guard(event)
        pool = self.activation_pool
        if pool is not None:
            pool._used = 0  # inline pool.reset()
            doc = self._doc
            if doc is None:
                doc = self._doc = Doc(event)
            else:
                # One pooled document message per network; every slot
                # read happens within this event (topological order), so
                # in-place mutation is never observed across events.
                object.__setattr__(doc, "event", event)
        else:
            doc = Doc(event)
        batch = self._src_batch
        batch[0] = doc
        run = self._exec
        if run is not None:
            run(self.source.feed(batch))
        else:
            outputs: list[list[Message]] = [None] * len(self._nodes)  # type: ignore[list-item]
            outputs[0] = self.source.feed(batch)
            slot = 1
            for node, left, right in self._plan:
                if right >= 0:
                    outputs[slot] = node.feed2(outputs[left], outputs[right])
                else:
                    outputs[slot] = node.feed(outputs[left])
                slot += 1
        if self.limits is not None and self.limits.max_formula_size is not None:
            self._guard_formula_size()
        store = self.condition_store
        if store is not None and store._release_pending:
            store.end_of_event()
        if event.__class__ is EndDocument:
            memo = self.formula_memo
            if memo is not None:
                # Nothing outlives the document that could replay these
                # merges; dropping the strong operand refs frees the
                # retained formula DAGs between documents.
                memo.clear()
        sink = self.sink
        if sink is None or not sink.results:
            return []
        matches = list(sink.results)
        sink.results.clear()
        return matches

    def _guard(self, event: Event) -> None:
        """Enforce depth and per-document budgets before the event runs.

        Rejecting the event *before* it reaches any transducer keeps
        every per-transducer stack within ``max_depth`` — the defense
        against billion-laughs-style depth bombs the paper's ``d``-bound
        memory analysis makes predictable.
        """
        limits = self.limits
        cls = event.__class__
        if cls is StartDocument:
            self._doc_events = 0
            if limits.max_seconds_per_document is not None:
                self._doc_deadline = (
                    self.clock.monotonic() + limits.max_seconds_per_document
                )
        self._doc_events += 1
        if (
            limits.max_events_per_document is not None
            and self._doc_events > limits.max_events_per_document
        ):
            raise ResourceLimitError(
                f"document exceeded {limits.max_events_per_document} events",
                limit="max_events_per_document",
                observed=self._doc_events,
            )
        if cls is StartElement or cls is StartDocument:
            self._depth += 1
            if limits.max_depth is not None and self._depth > limits.max_depth:
                raise ResourceLimitError(
                    f"stream depth {self._depth} exceeds limit {limits.max_depth}",
                    limit="max_depth",
                    observed=self._depth,
                )
        elif cls is EndElement or cls is EndDocument:
            if self._depth > 0:
                self._depth -= 1
        if self._doc_deadline is not None and self.clock.monotonic() > self._doc_deadline:
            raise ResourceLimitError(
                f"document exceeded {limits.max_seconds_per_document}s wall clock",
                limit="max_seconds_per_document",
                observed=limits.max_seconds_per_document,
            )

    def _guard_formula_size(self) -> None:
        """Enforce the σ ceiling after the event's message batch settled."""
        ceiling = self.limits.max_formula_size
        for node in self._nodes:
            size = node.stats.max_formula_size
            if size > ceiling:
                raise ResourceLimitError(
                    f"{node.name}: condition formula size {size} exceeds "
                    f"limit {ceiling}",
                    limit="max_formula_size",
                    observed=size,
                )

    def run(self, events: Iterable[Event]) -> Iterator[Match]:
        """Evaluate a whole stream, yielding matches as they complete."""
        for event in events:
            yield from self.process_event(event)

    # ------------------------------------------------------------------
    # checkpointing

    def snapshot(self) -> dict:
        """JSON-serializable snapshot of all evaluation state.

        Node states are keyed by the unique display names assigned in
        :meth:`finalize`; since compilation is deterministic for a given
        (query, optimize) pair, the same query always produces the same
        name set — which doubles as an integrity check on restore.
        """
        if not self._finalized:
            raise EngineError("cannot snapshot an unfinalized network")
        return {
            "nodes": {node.name: node.snapshot() for node in self._nodes},
            "depth": self._depth,
            "doc_events": self._doc_events,
            "events": self._events,
        }

    def restore(self, state: dict) -> None:
        """Restore a snapshot into this (freshly compiled) network.

        The per-document wall-clock deadline is deliberately *not*
        restored: wall time spent before a crash is gone, so the budget
        restarts when the resumed document's next event arrives.
        """
        if not self._finalized:
            raise EngineError("cannot restore into an unfinalized network")
        nodes = state["nodes"]
        have = {node.name for node in self._nodes}
        if set(nodes) != have:
            missing = set(nodes) ^ have
            raise EngineError(
                f"checkpoint topology mismatch (differing nodes: "
                f"{sorted(missing)}); was the checkpoint taken from the "
                f"same query and compiler settings?"
            )
        for node in self._nodes:
            node.restore(nodes[node.name])
        self._depth = int(state["depth"])
        self._doc_events = int(state["doc_events"])
        self._events = int(state["events"])
        self._doc_deadline = None

    def stats(self) -> NetworkStats:
        """Roll up per-transducer instrumentation."""
        stats = NetworkStats(degree=self.degree, events=self._events)
        for node in self._nodes:
            stats.messages += node.stats.messages
            stats.max_stack = max(stats.max_stack, node.stats.max_stack)
            stats.max_formula_size = max(
                stats.max_formula_size, node.stats.max_formula_size
            )
            stats.per_transducer[node.name] = {
                "messages": node.stats.messages,
                "max_stack": node.stats.max_stack,
                "max_formula_size": node.stats.max_formula_size,
                "activations_emitted": node.stats.activations_emitted,
            }
        return stats
