"""Evaluating many queries against one stream — the SDI scenario.

Selective dissemination of information (the paper's motivating use case
and the setting of the XFilter/YFilter related work, Sec. VIII) evaluates
thousands of subscription queries against each incoming document.  The
paper's conclusion names multi-query processing as the natural next step
for SPEX; this module provides the straightforward shared-pass variant:
every query keeps its own network, the stream is read **once**, and each
event is pushed through all networks.

Two consumption styles:

* :meth:`MultiQueryEngine.run` — full evaluation; yields
  ``(query_id, match)`` pairs progressively.
* :meth:`MultiQueryEngine.filter_documents` — XFilter-style boolean
  matching: report, per query, whether the document matches at all.
  Networks whose query has matched are skipped for the rest of the
  document (first-match short-circuit).
"""

from __future__ import annotations

from operator import itemgetter
from typing import Iterable, Iterator, Mapping

from ..conditions.store import ConditionStore, VariableAllocator
from ..errors import CheckpointError, DeadlineExceeded, EngineError, ResourceLimitError
from ..limits import ResourceLimits
from ..rpeq.ast import Concat, Rpeq
from ..rpeq.parser import parse
from ..rpeq.unparse import unparse
from ..xmlstream.events import EndDocument, Event, StartDocument
from ..xmlstream.offsets import StreamCursor, skip_events
from ..xmlstream.parser import ParserLimits, iter_events
from ..xmlstream.recovery import (
    ErrorReport,
    RecoveryPolicy,
    as_policy,
    recovered_documents,
    recovering,
)
from .checkpoint import Checkpoint
from .clock import Clock, as_clock
from .compiler import _Compiler, compile_network
from .engine import EngineStats, RobustnessCounters
from .fastlane import (
    FastLaneAdapter,
    FastLaneCore,
    GatedNetworkAdapter,
    HybridAdapter,
    build_lane_runner,
)
from .network import Network
from .optimize import OptimizationFlags, as_flags
from .output_tx import Match, OutputTransducer
from .path_transducers import InputTransducer
from .serving import (
    AdmissionDecision,
    AdmissionPolicy,
    BreakerState,
    CircuitBreaker,
    QueryOutcome,
    ServingPolicy,
    ServingReport,
    classify_admission,
    ensure_admitted,
)


class MultiQueryEngine:
    """One stream pass, many rpeq queries."""

    def __init__(
        self,
        queries: Mapping[str, str | Rpeq] | Iterable[str],
        collect_events: bool = False,
        limits: ResourceLimits | None = None,
        preflight: bool = True,
        admission: AdmissionPolicy | None = None,
        rewrite: bool = False,
        optimize: bool | OptimizationFlags = True,
    ) -> None:
        """Register subscription queries.

        Args:
            queries: either a mapping ``query_id -> query`` or a plain
                iterable of query strings (ids are then the strings
                themselves).
            collect_events: whether matches should carry event fragments;
                off by default, as SDI workloads usually need match
                notifications, not reconstructed fragments.
            limits: resource guards applied to every network (see
                :class:`repro.limits.ResourceLimits`) — on a shared
                SDI pass, the defense that keeps one depth-bomb document
                from taking every subscription down with it.
            preflight: statically analyze every registered query before
                accepting the engine; per-query reports are kept in
                :attr:`analysis`.
            admission: cost-certified admission control
                (:class:`~repro.core.serving.AdmissionPolicy`).  Each
                query is classified at registration; rejected queries
                never touch the stream and degraded admissions run under
                tightened buffer ceilings.  Decisions are kept in
                :attr:`admissions`.
            rewrite: opt-in certified query rewriting
                (:func:`repro.analysis.rewrite.rewrite_query`).  Each
                registered query is rewritten before planning, admission
                and pre-flight; a rewrite is applied **only** if every
                step's equivalence certificate discharged, otherwise the
                original query runs.  Results are kept in
                :attr:`rewrites`.
            optimize: optimization knobs, as for
                :func:`~repro.core.compiler.compile_network`.  The
                ``dfa_lane``/``hybrid_gate`` knobs additionally control
                whether planned fast lanes *execute* on the shared lazy
                DFA (:mod:`repro.core.fastlane`); with both off every
                query runs on its transducer network regardless of the
                planner's lane.  The lanes each query actually ran on
                are kept in :attr:`lane_executions`, compile-time
                demotions (``PLAN005``) in :attr:`lane_demotions`.

        Raises:
            StaticAnalysisError: pre-flight analysis rejected one of the
                queries (the exception names the offending query id).
        """
        if isinstance(queries, Mapping):
            items = list(queries.items())
        else:
            items = [(text, text) for text in queries]
        self.queries: dict[str, Rpeq] = {
            query_id: parse(query) if isinstance(query, str) else query
            for query_id, query in items
        }
        self.collect_events = collect_events
        self.limits = limits
        self.optimize = as_flags(optimize)
        #: lifetime recovery counters, mirroring ``SpexEngine.robustness``
        self.robustness = RobustnessCounters()
        #: the execution lane each compiled query actually runs on
        #: (``"dfa"``/``"hybrid"``/``"gated"``/``"network"``), refreshed
        #: by every compile pass — the planner invariant CI asserts.
        self.lane_executions: dict[str, str] = {}
        #: per-query reason a planned fast lane was demoted to the
        #: network at compile time (surfaced as ``PLAN005``).
        self.lane_demotions: dict[str, str] = {}
        self._fastlane_core: FastLaneCore | None = None
        self.admission = admission
        self.rewrite = rewrite
        #: per-query :class:`~repro.analysis.rewrite.RewriteResult` for
        #: queries the certified rewriter changed (``rewrite=True`` only)
        self.rewrites: dict = {}
        if rewrite:
            for query_id in list(self.queries):
                self._rewrite_one(query_id)
        #: per-query :class:`~repro.analysis.planner.QueryPlan` —
        #: execution lane, qualifier-free prefix and refined σ̂ bound
        self.plans: dict = {
            query_id: self._plan_one(query, query_id)
            for query_id, query in self.queries.items()
        }
        #: per-query :class:`~repro.core.serving.AdmissionDecision`
        #: (empty without an admission policy)
        self.admissions: dict[str, AdmissionDecision] = {}
        if admission is not None:
            for query_id, query in self.queries.items():
                decision = classify_admission(
                    query, admission, limits, plan=self.plans[query_id]
                )
                self.admissions[query_id] = decision
                if not decision.admitted:
                    self.robustness.admissions_rejected += 1
        self._preflight = preflight
        #: per-query pre-flight reports (``None`` with ``preflight=False``)
        self.analysis = None
        if preflight:
            reports = {}
            for query_id, query in self.queries.items():
                if not self._is_admitted(query_id):
                    continue
                reports[query_id] = self._preflight_one(query_id, query)
            self.analysis = reports
        #: :class:`~repro.core.serving.ServingReport` of the most recent
        #: :meth:`serve` pass (``None`` before the first one)
        self.serving: ServingReport | None = None
        self._last_networks: dict[str, Network] | None = None
        self._last_cursor: StreamCursor | None = None
        self._breakers: dict[str, CircuitBreaker] | None = None

    def __len__(self) -> int:
        return len(self.queries)

    @property
    def stats(self) -> EngineStats:
        """Roll-up of the most recent compile pass and lifetime counters.

        The ``fastlane_*`` fields carry the lane-execution invariant the
        ``lane-differential`` CI job asserts: every planned dfa-lane
        query (under default flags) must show up in
        ``fastlane_dfa_queries``, i.e. it actually executed on the
        shared lazy DFA rather than a transducer network.
        """
        lanes = self.lane_executions
        stats = EngineStats(
            fastlane_dfa_queries=sum(1 for lane in lanes.values() if lane == "dfa"),
            fastlane_hybrid_queries=sum(
                1 for lane in lanes.values() if lane == "hybrid"
            ),
            fastlane_gated_queries=sum(
                1 for lane in lanes.values() if lane == "gated"
            ),
            fastlane_demotions=len(self.lane_demotions),
        )
        core = self._fastlane_core
        if core is not None:
            stats.fastlane_states = core.states_interned
            stats.fastlane_saturated_steps = core.saturated_steps
        robustness = self.robustness
        stats.checkpoints_written = robustness.checkpoints_written
        stats.restores = robustness.restores
        stats.retries = robustness.retries
        stats.stalls_detected = robustness.stalls_detected
        stats.quarantines = robustness.quarantines
        stats.breaker_trips = robustness.breaker_trips
        stats.readmissions = robustness.readmissions
        stats.load_sheds = robustness.load_sheds
        stats.deadline_hits = robustness.deadline_hits
        stats.admissions_rejected = robustness.admissions_rejected
        return stats

    # ------------------------------------------------------------------
    # registration / admission

    def _is_admitted(self, query_id: str) -> bool:
        decision = self.admissions.get(query_id)
        return decision is None or decision.admitted

    def _effective_limits(self, query_id: str) -> ResourceLimits | None:
        """The limits a query's network runs under (degraded or engine)."""
        decision = self.admissions.get(query_id)
        if decision is not None and decision.limits is not None:
            return decision.limits
        return self.limits

    def _planning_limits(self) -> ResourceLimits | None:
        """The limits queries are planned under: the engine's, with the
        admission policy's ``depth_bound`` filled in when the engine
        sets no depth of its own (mirrors ``classify_admission``)."""
        from dataclasses import replace

        limits = self.limits
        policy = self.admission
        if (
            policy is not None
            and policy.depth_bound is not None
            and (limits is None or limits.max_depth is None)
        ):
            limits = replace(
                limits if limits is not None else ResourceLimits(),
                max_depth=policy.depth_bound,
            )
        return limits

    def _plan_one(self, query: Rpeq, query_id: str | None = None):
        from dataclasses import replace

        from ..analysis.planner import plan_query

        plan, _report = plan_query(query, limits=self._planning_limits())
        # The engine rewrites before planning, so the planner itself sees
        # zero steps — stamp the actual count from the applied rewrite.
        result = self.rewrites.get(query_id) if query_id is not None else None
        if result is not None:
            plan = replace(plan, rewrite_steps=len(result.steps))
        return plan

    def _rewrite_one(self, query_id: str) -> None:
        """Certified-rewrite one registered query in place (opt-in).

        Only a fully certified rewrite replaces the query; a failed
        certificate (or a no-op) leaves the original untouched.
        """
        from ..analysis.rewrite import rewrite_query

        result, _report = rewrite_query(self.queries[query_id])
        if result.certified and result.changed:
            self.queries[query_id] = result.rewritten
            self.rewrites[query_id] = result

    def _preflight_one(self, query_id: str, query: Rpeq):
        from ..analysis.preflight import ensure_preflight
        from ..errors import StaticAnalysisError

        try:
            return ensure_preflight(
                query, limits=self.limits, collect_events=self.collect_events
            )
        except StaticAnalysisError as exc:
            raise StaticAnalysisError(
                f"query {query_id!r}: {exc}", report=exc.report
            ) from exc

    def add_query(
        self,
        query_id: str,
        query: str | Rpeq,
        require_admission: bool = False,
    ) -> AdmissionDecision | None:
        """Register one more subscription (effective from the next pass).

        Runs the same admission classification and pre-flight analysis
        as the constructor.  Returns the admission decision (``None``
        without an admission policy); with ``require_admission=True`` a
        rejection raises :class:`~repro.errors.AdmissionError` instead
        of registering the query as rejected.
        """
        if query_id in self.queries:
            raise EngineError(f"query {query_id!r} already registered")
        expr = parse(query) if isinstance(query, str) else query
        if self.rewrite:
            from ..analysis.rewrite import rewrite_query

            result, _report = rewrite_query(expr)
            if result.certified and result.changed:
                expr = result.rewritten
                self.rewrites[query_id] = result
        plan = self._plan_one(expr, query_id)
        decision = None
        if self.admission is not None:
            decision = classify_admission(
                expr, self.admission, self.limits, plan=plan
            )
            if require_admission:
                try:
                    ensure_admitted(query_id, decision)
                except Exception:
                    self.rewrites.pop(query_id, None)
                    raise
            if not decision.admitted:
                self.robustness.admissions_rejected += 1
        if self.analysis is not None and (decision is None or decision.admitted):
            self.analysis[query_id] = self._preflight_one(query_id, expr)
        self.queries[query_id] = expr
        self.plans[query_id] = plan
        if decision is not None:
            self.admissions[query_id] = decision
        return decision

    def remove_query(self, query_id: str) -> None:
        """Drop a subscription (effective from the next pass)."""
        if query_id not in self.queries:
            raise EngineError(f"query {query_id!r} is not registered")
        del self.queries[query_id]
        self.admissions.pop(query_id, None)
        self.plans.pop(query_id, None)
        self.rewrites.pop(query_id, None)
        if self.analysis is not None:
            self.analysis.pop(query_id, None)

    def _fastlane(self) -> FastLaneCore:
        core = self._fastlane_core
        if core is None:
            core = self._fastlane_core = FastLaneCore()
        return core

    def _compile_one(
        self,
        query_id: str,
        clock: Clock | None = None,
        collect_events: bool | None = None,
        force_network: bool = False,
    ) -> Network:
        """Compile one query onto its execution lane.

        Returns either a plain transducer :class:`Network` or one of the
        fast-lane runners of :mod:`repro.core.fastlane`, which expose
        the same driver surface.  Fast lanes require the plain-match
        configuration they were proved against: no event collection and
        no per-query resource limits (a limit-armed network must see
        every event to count it, which the gate's subtree skipping would
        break).
        """
        collect = self.collect_events if collect_events is None else collect_events
        limits = self._effective_limits(query_id)
        query = self.queries[query_id]

        def factory() -> Network:
            return compile_network(
                query,
                collect_events=collect,
                optimize=self.optimize,
                limits=limits,
            )[0]

        runner: Network | None = None
        lane = "network"
        flags = self.optimize
        if (
            not force_network
            and not collect
            and limits is None
            and (flags.dfa_lane or flags.hybrid_gate)
        ):
            runner, lane, reason = build_lane_runner(
                self._fastlane(),
                query_id,
                query,
                self.plans.get(query_id),
                flags,
                factory,
            )
            if reason is not None:
                self.lane_demotions[query_id] = reason
        self.lane_executions[query_id] = lane
        result = runner if runner is not None else factory()
        if clock is not None:
            result.clock = clock
        return result

    def _compile_all(
        self,
        collect_events: bool | None = None,
        clock: Clock | None = None,
    ) -> dict[str, Network]:
        # A fresh pass gets a fresh shared DFA: networks restart their
        # per-pass state, so the fast-lane core must too.
        self._fastlane_core = None
        self.lane_executions = {}
        self.lane_demotions = {}
        networks: dict[str, Network] = {}
        for query_id in self.queries:
            if not self._is_admitted(query_id):
                continue
            networks[query_id] = self._compile_one(
                query_id, clock=clock, collect_events=collect_events
            )
        return networks

    def run(
        self,
        source: str | Iterable[Event],
        on_error: RecoveryPolicy | str = RecoveryPolicy.STRICT,
        report: ErrorReport | None = None,
        cursor: StreamCursor | None = None,
    ) -> Iterator[tuple[str, Match]]:
        """Evaluate all queries in one pass; yield matches progressively.

        With ``on_error="skip"``/``"repair"`` the source is treated as a
        sequence of documents; a malformed document (or one that trips a
        resource limit) files a per-document record in ``report`` and
        the pass continues with the next document, fresh networks and
        all — one poisoned subscriber document no longer kills the
        shared pipeline.

        Passing a ``cursor`` (strict mode only) makes the pass
        checkpointable via :meth:`checkpoint`, as for
        :meth:`SpexEngine.run <repro.core.engine.SpexEngine.run>`.
        """
        policy = as_policy(on_error)
        if policy is not RecoveryPolicy.STRICT:
            if cursor is not None:
                raise EngineError(
                    "checkpoint cursors require on_error='strict' (recovery "
                    "policies re-segment the source per document)"
                )
            self._last_cursor = None
            yield from self._run_recovering(source, policy, report)
            return
        networks = self._compile_all()
        self._last_networks = networks
        self._last_cursor = cursor
        self._breakers = None
        # Strict runs validate on the fly, so malformed input raises the
        # documented StreamError instead of silently confusing every
        # subscription's transducer stacks at once.
        events = recovering(
            iter_events(source), RecoveryPolicy.STRICT, require_end=False
        )
        if cursor is not None:
            events = cursor.attach(events)
        # Hoisted out of the per-event loop: the dict iteration and the
        # process_event attribute lookup are per-pass constants.  Core-
        # backed fast-lane queries are excluded — the shared DFA does
        # their per-event work once in ``core.advance`` and their
        # matches come out of one bulk drain, so per-query cost is paid
        # only by network (and gated-network) queries.
        pairs = [
            (query_id, network.process_event)
            for query_id, network in networks.items()
            if not isinstance(network, (FastLaneAdapter, HybridAdapter))
        ]
        core = self._fastlane_core
        if core is None:
            for event in events:
                for query_id, process_event in pairs:
                    matches = process_event(event)
                    if matches:
                        for match in matches:
                            yield query_id, match
            return
        core.track_dirty = True
        advance = core.advance
        drain = core.drain_matches
        # Emission order within one event must be bit-identical to the
        # pure-network pass: compile order across queries, FIFO within a
        # query.  Fast-lane drains arrive out of that order (flush order
        # is close order), so match-bearing events — the rare case —
        # merge through a stable sort on the compile-order index.
        order = {query_id: index for index, query_id in enumerate(networks)}
        by_order = itemgetter(0)
        for event in events:
            advance(event)
            batch: list[tuple[int, str, Match]] | None = None
            for query_id, process_event in pairs:
                matches = process_event(event)
                if matches:
                    if batch is None:
                        batch = []
                    rank = order[query_id]
                    for match in matches:
                        batch.append((rank, query_id, match))
            if core._dirty:
                if batch is None:
                    batch = []
                for query_id, match in drain():
                    batch.append((order[query_id], query_id, match))
            if batch:
                batch.sort(key=by_order)
                for _, query_id, match in batch:
                    yield query_id, match

    def _run_recovering(
        self,
        source: str | Iterable[Event],
        policy: RecoveryPolicy,
        report: ErrorReport | None,
    ) -> Iterator[tuple[str, Match]]:
        report = report if report is not None else ErrorReport()
        for document in recovered_documents(iter_events(source), policy, report):
            networks = self._compile_all()
            core = self._fastlane_core
            matches: list[tuple[str, Match]] = []
            doc_index = report.documents_seen - 1
            try:
                for event in document:
                    if core is not None:
                        core.advance(event)
                    for query_id, network in networks.items():
                        for match in network.process_event(event):
                            matches.append((query_id, match))
            except ResourceLimitError as exc:
                report.add(doc_index, str(exc), "limit")
                report.documents_skipped += 1
                continue
            yield from matches

    # ------------------------------------------------------------------
    # serving: bulkheads, breakers, deadlines, shedding

    def serve(
        self,
        source: str | Iterable[Event],
        policy: ServingPolicy | None = None,
        on_error: RecoveryPolicy | str = RecoveryPolicy.STRICT,
        report: ErrorReport | None = None,
        cursor: StreamCursor | None = None,
        clock: Clock | None = None,
        parser_limits: ParserLimits | None = None,
        quarantined: Iterable[str] = (),
    ) -> Iterator[tuple[str, Match]]:
        """Evaluate all queries with per-query fault domains.

        Like :meth:`run`, but each query is a *bulkhead*: a query that
        raises, trips its resource limits, or blows a deadline is
        quarantined — its sub-network detached mid-stream, its buffers
        released, its already-decided results flushed, and its
        :class:`~repro.core.serving.QueryOutcome` marked ``degraded`` —
        while every healthy query keeps streaming, byte-identical to a
        run without the poisoned neighbour.  A per-query circuit breaker
        (closed → open → half-open) re-admits quarantined queries at
        document boundaries; ``policy.stream_deadline`` /
        ``policy.doc_deadline`` (measured on ``clock``) yield per-query
        ``DEADLINE_*`` outcomes — never a global abort — and
        ``policy.shed_buffered_events`` sheds the lowest-priority
        queries (never the stream) under buffer pressure.

        The pass's :class:`~repro.core.serving.ServingReport` is kept in
        :attr:`serving`.  Strict passes given a ``cursor`` remain
        checkpointable; breaker and quarantine state round-trip through
        :meth:`checkpoint`/:meth:`resume`.  ``parser_limits`` arms the
        untrusted-input hardening of the XML layer
        (:class:`~repro.xmlstream.parser.ParserLimits`).

        ``quarantined`` names queries that enter the pass already
        poisoned: their breakers are latched open before the first event
        (outcome ``POISON``), so they never run and never re-admit —
        the shard layer uses this to keep convicted poison-pill queries
        out of a freshly started worker without a checkpoint to carry
        the latch.
        """
        policy = policy if policy is not None else ServingPolicy()
        clock = as_clock(clock)
        serving = ServingReport()
        self.serving = serving
        self._record_plans(serving)
        for query_id in self.queries:
            self._admission_outcome(serving, query_id)
        recovery = as_policy(on_error)
        if recovery is not RecoveryPolicy.STRICT:
            if cursor is not None:
                raise EngineError(
                    "checkpoint cursors require on_error='strict' (recovery "
                    "policies re-segment the source per document)"
                )
            self._last_networks = None
            self._last_cursor = None
            breakers = {
                query_id: CircuitBreaker(policy.breaker)
                for query_id in self.queries
                if self._is_admitted(query_id)
            }
            self._breakers = breakers
            self._latch_poisoned(None, serving, breakers, quarantined)
            return self._serve_recovering(
                source, recovery, policy, serving, breakers, clock, report,
                parser_limits,
            )
        networks = self._compile_all(clock=clock)
        breakers = {query_id: CircuitBreaker(policy.breaker) for query_id in networks}
        self._last_networks = networks
        self._last_cursor = cursor
        self._breakers = breakers
        self._latch_poisoned(networks, serving, breakers, quarantined)
        events = recovering(
            iter_events(source, limits=parser_limits),
            RecoveryPolicy.STRICT,
            require_end=False,
        )
        if cursor is not None:
            events = cursor.attach(events)
        return self._serve_pump(networks, events, policy, serving, breakers, clock)

    def _record_plans(self, serving: ServingReport) -> None:
        """Mirror the registration-time query plans into the report."""
        for query_id, plan in self.plans.items():
            serving.plans[query_id] = plan.to_obj()

    def _admission_outcome(self, serving: ServingReport, query_id: str) -> bool:
        """Record a query's admission decision in ``serving``.

        Returns ``True`` when the query may join the pass (cleanly or
        degraded), ``False`` on a rejection.
        """
        outcome = serving.outcome(query_id)
        decision = self.admissions.get(query_id)
        if decision is None:
            serving.admitted += 1
            return True
        if not decision.admitted:
            outcome.status = "rejected"
            outcome.code = decision.code
            outcome.reason = decision.reason
            serving.rejected += 1
            return False
        serving.admitted += 1
        if decision.degraded:
            outcome.degraded = True
            outcome.code = decision.code
            outcome.reason = decision.reason
            serving.admitted_degraded += 1
        return True

    def start_pump(
        self,
        policy: ServingPolicy | None = None,
        clock: Clock | None = None,
        cursor: StreamCursor | None = None,
        quarantined: Iterable[str] = (),
    ) -> "ServePump":
        """Open a push-mode serving pass (see :class:`ServePump`).

        This is :meth:`serve` with the event loop inverted: instead of
        handing over a source iterable and consuming a match iterator,
        the caller *pushes* events into the returned pump one at a time
        and receives each event's matches synchronously.  The asyncio
        service frontend (:mod:`repro.service`) is built on this — an
        event arriving over the network cannot be pulled by a generator,
        so the pump is the shape the state machine must have there.
        Both entry points execute the same per-event transition
        (:meth:`ServePump.feed`), which is what makes a served
        subscriber's match stream bit-identical to an offline
        :meth:`serve` pass by construction.

        Passing a ``cursor`` keeps the pass checkpointable: the pump
        advances it before processing each event (the update-then-
        process invariant of :meth:`StreamCursor.attach
        <repro.xmlstream.offsets.StreamCursor.attach>`), so
        :meth:`checkpoint` may be called between any two :meth:`feed`
        calls.  ``quarantined`` pre-latches poison-pill queries exactly
        as in :meth:`serve`.
        """
        policy = policy if policy is not None else ServingPolicy()
        clock = as_clock(clock)
        serving = ServingReport()
        self.serving = serving
        self._record_plans(serving)
        for query_id in self.queries:
            self._admission_outcome(serving, query_id)
        networks = self._compile_all(clock=clock)
        breakers = {
            query_id: CircuitBreaker(policy.breaker) for query_id in networks
        }
        self._last_networks = networks
        self._last_cursor = cursor
        self._breakers = breakers
        self._latch_poisoned(networks, serving, breakers, quarantined)
        return ServePump(
            self, networks, policy, serving, breakers, clock, cursor=cursor
        )

    def _detach(
        self,
        live: dict[str, Network],
        serving: ServingReport,
        query_id: str,
        status: str,
        code: str,
        reason: str,
    ) -> list[Match]:
        """Drop a query from the pass; return its undelivered matches.

        The sub-network is unlinked (its buffers go with it) and any
        matches it had already decided but not yet delivered are
        returned so the caller can flush them under the now-``degraded``
        outcome.
        """
        network = live.pop(query_id)
        outcome = serving.outcome(query_id)
        outcome.status = status
        outcome.code = code
        outcome.reason = reason
        outcome.document = serving.documents_seen - 1 if serving.documents_seen else None
        outcome.degraded = True
        flushed: list[Match] = []
        for sink in network.sinks:
            flushed.extend(sink.results)
            sink.results.clear()
        deactivate = getattr(network, "deactivate", None)
        if deactivate is not None:
            # fast-lane runner: stop its slot in the shared DFA too
            deactivate()
        outcome.matches += len(flushed)
        return flushed

    def _readmit(
        self,
        live: dict[str, Network],
        serving: ServingReport,
        breakers: dict[str, CircuitBreaker],
        query_id: str,
        clock: Clock,
    ) -> bool:
        """Document boundary: rejoin a detached query if its breaker allows.

        Shed and doc-deadline detachments carry no breaker penalty, so
        their (closed) breakers re-admit immediately; quarantined queries
        wait out the cooldown and come back as half-open probes.
        """
        outcome = serving.outcome(query_id)
        if outcome.status == "rejected":
            return False
        breaker = breakers[query_id]
        if not breaker.admits():
            return False
        live[query_id] = self._compile_one(query_id, clock)
        if breaker.state is BreakerState.HALF_OPEN:
            serving.probes += 1
        outcome.status = "ok"
        return True

    def _latch_poisoned(
        self,
        live: dict[str, Network] | None,
        serving: ServingReport,
        breakers: dict[str, CircuitBreaker],
        quarantined: Iterable[str],
    ) -> None:
        """Latch pre-convicted poison-pill queries before the first event.

        Used by :meth:`serve` when the caller (the shard coordinator)
        already knows certain queries crash the process: their breakers
        latch open permanently, their networks (if compiled) are dropped,
        and their outcomes read ``quarantined``/``POISON`` — the same
        terminal state an in-pass ``max_trips`` exhaustion reaches.
        """
        for query_id in quarantined:
            breaker = breakers.get(query_id)
            if breaker is None or breaker.latched:
                continue
            breaker.latch()
            if live is not None:
                live.pop(query_id, None)
            outcome = serving.outcome(query_id)
            outcome.status = "quarantined"
            outcome.code = "POISON"
            outcome.reason = (
                "pre-quarantined as a poison pill (crashed its shard "
                "worker process)"
            )
            outcome.degraded = True
            outcome.trips = breaker.trips
            serving.quarantines += 1
            self.robustness.quarantines += 1

    def _quarantine(
        self,
        live: dict[str, Network],
        serving: ServingReport,
        breakers: dict[str, CircuitBreaker],
        query_id: str,
        exc: Exception,
    ) -> list[Match]:
        code = "LIMIT" if isinstance(exc, ResourceLimitError) else "ERROR"
        flushed = self._detach(live, serving, query_id, "quarantined", code, str(exc))
        breaker = breakers[query_id]
        breaker.record_failure()
        serving.outcome(query_id).trips = breaker.trips
        serving.quarantines += 1
        serving.breaker_trips += 1
        self.robustness.quarantines += 1
        self.robustness.breaker_trips += 1
        return flushed

    def _shed(
        self,
        live: dict[str, Network],
        serving: ServingReport,
        policy: ServingPolicy,
        total: int,
    ) -> Iterator[tuple[str, Match]]:
        """Shed lowest-priority queries until the pass fits again."""
        order = sorted(live, key=lambda q: (policy.priorities.get(q, 0), q))
        for query_id in order:
            if total <= policy.shed_buffered_events:
                break
            load = sum(s.buffered_events for s in live[query_id].sinks)
            flushed = self._detach(
                live,
                serving,
                query_id,
                "shed",
                "SHED001",
                f"aggregate buffered events {total} over high-water mark "
                f"{policy.shed_buffered_events}",
            )
            total -= load
            serving.load_sheds += 1
            self.robustness.load_sheds += 1
            for match in flushed:
                yield query_id, match

    def _serve_pump(
        self,
        live: dict[str, Network],
        events: Iterable[Event],
        policy: ServingPolicy,
        serving: ServingReport,
        breakers: dict[str, CircuitBreaker],
        clock: Clock,
    ) -> Iterator[tuple[str, Match]]:
        """Strict-mode bulkhead loop over a persistent network set.

        ``live`` is mutated in place (detached queries leave it), so a
        concurrent :meth:`checkpoint` snapshots exactly the still-live
        sub-networks.  The per-event transition itself lives in
        :class:`ServePump`; this is its pull-mode driver.
        """
        pump = ServePump(self, live, policy, serving, breakers, clock)
        for event in events:
            yield from pump.feed(event)
            if pump.finished:
                return

    def _serve_recovering(
        self,
        source: str | Iterable[Event],
        recovery: RecoveryPolicy,
        policy: ServingPolicy,
        serving: ServingReport,
        breakers: dict[str, CircuitBreaker],
        clock: Clock,
        report: ErrorReport | None,
        parser_limits: ParserLimits | None,
    ) -> Iterator[tuple[str, Match]]:
        """Document-wise bulkhead loop under a recovery policy.

        Malformed documents are quarantined by the recovery layer
        exactly as in :meth:`run`; on top of that, each surviving
        document runs with per-query bulkheads, and matches of queries
        that survive the whole document are delivered at its end (so a
        healthy query's delivered set is per-document identical to a
        solo run).
        """
        report = report if report is not None else ErrorReport()
        robustness = self.robustness
        stream_deadline = (
            clock.monotonic() + policy.stream_deadline
            if policy.stream_deadline is not None
            else None
        )

        def expire_stream() -> None:
            reason = str(
                DeadlineExceeded(
                    f"stream deadline of {policy.stream_deadline}s expired",
                    scope="stream",
                )
            )
            for query_id in breakers:
                outcome = serving.outcome(query_id)
                if outcome.status == "rejected":
                    continue
                outcome.status = "deadline"
                outcome.code = "DEADLINE_STREAM"
                outcome.reason = reason
                outcome.degraded = True
                serving.deadline_hits += 1
                robustness.deadline_hits += 1

        for document in recovered_documents(
            iter_events(source, limits=parser_limits),
            recovery,
            report,
            require_end=False,
        ):
            if stream_deadline is not None and clock.monotonic() > stream_deadline:
                expire_stream()
                return
            serving.documents_seen += 1
            live: dict[str, Network] = {}
            for query_id in breakers:
                self._readmit(live, serving, breakers, query_id, clock)
            core = self._fastlane_core
            doc_deadline = (
                clock.monotonic() + policy.doc_deadline
                if policy.doc_deadline is not None
                else None
            )
            buffered: dict[str, list[Match]] = {query_id: [] for query_id in live}
            doc_index = report.documents_seen - 1

            def flush_buffered(query_id: str) -> list[Match]:
                matches = buffered.pop(query_id, [])
                serving.outcome(query_id).matches += len(matches)
                return matches

            try:
                for event in document:
                    if stream_deadline is not None and (
                        clock.monotonic() > stream_deadline
                    ):
                        # flush this partial document's matches as degraded
                        for query_id in list(live):
                            del live[query_id]
                            for match in flush_buffered(query_id):
                                yield query_id, match
                        expire_stream()
                        return
                    if doc_deadline is not None and (
                        clock.monotonic() > doc_deadline and live
                    ):
                        reason = str(
                            DeadlineExceeded(
                                f"document deadline of {policy.doc_deadline}s "
                                f"expired",
                                scope="document",
                            )
                        )
                        for query_id in list(live):
                            flushed = self._detach(
                                live, serving, query_id, "deadline",
                                "DEADLINE_DOC", reason,
                            )
                            serving.deadline_hits += 1
                            robustness.deadline_hits += 1
                            for match in flush_buffered(query_id):
                                yield query_id, match
                            for match in flushed:
                                yield query_id, match
                        doc_deadline = None
                    if core is not None:
                        core.advance(event)
                    for query_id in list(live):
                        network = live[query_id]
                        try:
                            matches = network.process_event(event)
                        except Exception as exc:
                            if not policy.quarantine:
                                raise
                            flushed = self._quarantine(
                                live, serving, breakers, query_id, exc
                            )
                            for match in flush_buffered(query_id):
                                yield query_id, match
                            for match in flushed:
                                yield query_id, match
                            continue
                        buffered[query_id].extend(matches)
                    if policy.shed_buffered_events is not None and live:
                        total = sum(
                            sum(s.buffered_events for s in network.sinks)
                            for network in live.values()
                        )
                        if total > policy.shed_buffered_events:
                            shed_before = set(live)
                            yield from self._shed(live, serving, policy, total)
                            for query_id in shed_before - set(live):
                                for match in flush_buffered(query_id):
                                    yield query_id, match
            except ResourceLimitError as exc:
                # raised by the recovery layer's own re-segmentation, not
                # a query network: the whole document is quarantined
                report.add(doc_index, str(exc), "limit")
                report.documents_skipped += 1
                continue
            for query_id, network in live.items():
                outcome = serving.outcome(query_id)
                count = len(buffered[query_id])
                outcome.matches += count
                for match in buffered[query_id]:
                    yield query_id, match
                if breakers[query_id].record_document_success():
                    outcome.readmissions += 1
                    serving.readmissions += 1
                    robustness.readmissions += 1

    # ------------------------------------------------------------------
    # checkpoint / resume

    def checkpoint(self) -> Checkpoint:
        """Capture the in-flight shared pass as a :class:`Checkpoint`.

        Valid between events of a strict :meth:`run` that was given a
        ``cursor``; every subscription's network, condition store and
        variable allocator is snapshotted against the one shared source
        position.

        Raises:
            CheckpointError: no cursor-tracked strict pass to capture.
        """
        if self._last_cursor is None or self._last_networks is None:
            raise CheckpointError(
                "nothing to checkpoint: pass a StreamCursor to run() "
                "(strict mode) and start consuming it first"
            )
        payload = {
            "queries": {
                query_id: unparse(query)
                for query_id, query in self.queries.items()
            },
            "collect_events": self.collect_events,
            "optimize": self.optimize.to_obj(),
            "cursor": self._last_cursor.state(),
            "networks": {
                query_id: {
                    "network": network.snapshot(),
                    "store": network.condition_store.snapshot(),
                    "allocator": network.allocator.snapshot(),
                }
                for query_id, network in self._last_networks.items()
            },
        }
        if self._breakers is not None and self.serving is not None:
            payload["serving"] = {
                "breakers": {
                    query_id: breaker.snapshot()
                    for query_id, breaker in self._breakers.items()
                },
                **self.serving.to_obj(),
            }
        self.robustness.checkpoints_written += 1
        return Checkpoint(kind="multiquery", payload=payload)

    def resume(
        self,
        checkpoint: Checkpoint,
        source: str | Iterable[Event],
        policy: ServingPolicy | None = None,
        clock: Clock | None = None,
        parser_limits: ParserLimits | None = None,
    ) -> Iterator[tuple[str, Match]]:
        """Continue a checkpointed shared pass against ``source``.

        Same contract as :meth:`SpexEngine.resume
        <repro.core.engine.SpexEngine.resume>`: the source must replay
        the stream the checkpoint was taken from; matches before the
        checkpoint plus matches after this resume equal an uninterrupted
        pass.  Compatibility checks are eager.

        Checkpoints taken from a :meth:`serve` pass carry quarantine and
        breaker state: only the queries that were live at the cut are
        restored, tripped queries stay out until their *restored*
        breaker re-admits them at a document boundary (a latched breaker
        never does), and the resumed pass continues under ``policy``
        (defaults to a fresh :class:`~repro.core.serving.ServingPolicy`
        — pass the original one to keep deadlines and shedding).

        Raises:
            CheckpointError: the checkpoint came from a different engine
                kind, a different subscription set, or different options.
            StreamError: ``source`` is shorter than the checkpointed
                position.
        """
        payload = checkpoint.require("multiquery")
        networks, cursor = self._restore_networks(payload)
        serving_state = payload.get("serving")
        events = skip_events(
            iter_events(source, limits=parser_limits), cursor.events_read
        )
        # The strict validator is primed with the envelope state at the
        # cut, exactly as the uninterrupted pass would have reached it.
        events = recovering(
            events,
            RecoveryPolicy.STRICT,
            require_end=False,
            resume=payload["cursor"],
        )
        events = cursor.attach(events)
        if serving_state is None:
            self._breakers = None
            return self._pump(networks, events)
        policy = policy if policy is not None else ServingPolicy()
        clock = as_clock(clock)
        serving, breakers = self._restore_serving(
            serving_state, networks, policy, clock
        )
        return self._serve_pump(networks, events, policy, serving, breakers, clock)

    def resume_pump(
        self,
        checkpoint: Checkpoint,
        policy: ServingPolicy | None = None,
        clock: Clock | None = None,
    ) -> "ServePump":
        """Reconstruct a checkpointed serving pass as a push-mode pump.

        This is the *service-native* resume path: where :meth:`resume`
        couples the restored state to a pull-mode source iterator, this
        returns a live :class:`ServePump` with **no source attached** —
        the caller (the asyncio service frontend) pushes events arriving
        over the network into it, exactly as :meth:`start_pump` callers
        do.  Every restored artifact is the same as :meth:`resume`'s:
        sub-network snapshots, the condition stores and allocators, the
        stream cursor, the :class:`~repro.core.serving.ServingReport`
        (so document indices continue where the cut left them), and the
        circuit breakers — including latched quarantine convictions,
        which stay latched without any offline engine round-trip.

        The caller owns the replay contract :meth:`resume` enforces with
        ``skip_events``: the first event pushed into the returned pump
        must be the first event *after* the checkpoint cut (the pump's
        restored cursor continues counting from there).

        Raises:
            CheckpointError: wrong engine kind / subscription set /
                options, or the checkpoint carries no serving state
                (it was taken from a plain :meth:`run` pass, which has
                no breakers or report to revive a pump from).
        """
        payload = checkpoint.require("multiquery")
        networks, cursor = self._restore_networks(payload)
        serving_state = payload.get("serving")
        if serving_state is None:
            raise CheckpointError(
                "checkpoint carries no serving state: only checkpoints "
                "taken from a serve()/start_pump() pass can resume as a "
                "pump"
            )
        policy = policy if policy is not None else ServingPolicy()
        clock = as_clock(clock)
        serving, breakers = self._restore_serving(
            serving_state, networks, policy, clock
        )
        return ServePump(
            self, networks, policy, serving, breakers, clock, cursor=cursor
        )

    def _restore_networks(
        self, payload: dict
    ) -> tuple[dict[str, "Network"], StreamCursor]:
        """Shared state restoration of :meth:`resume`/:meth:`resume_pump`.

        Validates the checkpoint against this engine's registrations,
        revives every snapshotted sub-network (with its condition store
        and allocator), and rebuilds the stream cursor.  Only the
        sub-networks present in the checkpoint are revived: queries that
        were quarantined, shed or rejected at the cut have no snapshot,
        and re-admitting them is the breaker's call, not the resume
        path's.
        """
        have = {
            query_id: unparse(query) for query_id, query in self.queries.items()
        }
        if payload["queries"] != have:
            raise CheckpointError(
                "checkpoint subscription set does not match this engine's "
                "queries"
            )
        if bool(payload["collect_events"]) != self.collect_events:
            raise CheckpointError(
                f"checkpoint was taken with collect_events="
                f"{bool(payload['collect_events'])}, engine has "
                f"collect_events={self.collect_events}"
            )
        # Two-phase revival: every runner is compiled (and its fast-lane
        # slot registered in the shared DFA) before any state is
        # restored, so the product automaton's initial state covers the
        # full slot set when the first restore replays the open path.
        self._fastlane_core = None
        self.lane_executions = {}
        self.lane_demotions = {}
        compiled: list[tuple[str, Network, dict]] = []
        for query_id, states in payload["networks"].items():
            if not self._is_admitted(query_id):
                continue
            snap = states["network"]
            wants_fastlane = isinstance(snap, dict) and "fastlane" in snap
            network = self._compile_one(query_id, force_network=not wants_fastlane)
            if wants_fastlane and isinstance(network, Network):
                raise CheckpointError(
                    f"query {query_id!r} was checkpointed on a fast lane "
                    f"but compiles to a transducer network here; restore "
                    f"with the checkpoint's optimization flags "
                    f"(see the payload's 'optimize' entry)"
                )
            compiled.append((query_id, network, states))
        networks: dict[str, Network] = {}
        for query_id, network, states in compiled:
            network.restore(states["network"])
            network.condition_store.restore(states["store"])
            network.allocator.restore(states["allocator"])
            networks[query_id] = network
        cursor = StreamCursor.from_state(payload["cursor"])
        self._last_networks = networks
        self._last_cursor = cursor
        self.robustness.restores += 1
        return networks, cursor

    def _restore_serving(
        self,
        serving_state: dict,
        networks: dict[str, "Network"],
        policy: ServingPolicy,
        clock: Clock,
    ) -> tuple[ServingReport, dict[str, CircuitBreaker]]:
        """Revive the report and breakers of a checkpointed serving pass."""
        serving = ServingReport.from_obj(serving_state)
        # Checkpoints written before the planner existed carry no plans;
        # re-derive them from the (restored) registrations.
        if not serving.plans:
            self._record_plans(serving)
        breakers: dict[str, CircuitBreaker] = {}
        for query_id, snap in serving_state["breakers"].items():
            breaker = CircuitBreaker(policy.breaker)
            breaker.restore(snap)
            breakers[query_id] = breaker
        for network in networks.values():
            network.clock = clock
        self.serving = serving
        self._breakers = breakers
        return serving, breakers

    def _pump(
        self, networks: dict[str, Network], events: Iterable[Event]
    ) -> Iterator[tuple[str, Match]]:
        """Generator tail of :meth:`resume` (verification stays eager)."""
        core = self._fastlane_core
        for event in events:
            if core is not None:
                core.advance(event)
            for query_id, network in networks.items():
                for match in network.process_event(event):
                    yield query_id, match

    @classmethod
    def from_checkpoint(
        cls,
        checkpoint: Checkpoint,
        limits: ResourceLimits | None = None,
        admission: AdmissionPolicy | None = None,
    ) -> "MultiQueryEngine":
        """Build an engine matching the checkpoint's subscription set."""
        payload = checkpoint.require("multiquery")
        return cls(
            dict(payload["queries"]),
            collect_events=bool(payload["collect_events"]),
            limits=limits,
            admission=admission,
            # pre-lane checkpoints carry no flags; they meant "all on"
            optimize=as_flags(payload.get("optimize", True)),
        )

    def evaluate(
        self,
        source: str | Iterable[Event],
        on_error: RecoveryPolicy | str = RecoveryPolicy.STRICT,
        report: ErrorReport | None = None,
    ) -> dict[str, list[Match]]:
        """All matches per query, eagerly."""
        results: dict[str, list[Match]] = {query_id: [] for query_id in self.queries}
        for query_id, match in self.run(source, on_error=on_error, report=report):
            results[query_id].append(match)
        return results

    def filter_documents(
        self,
        source: str | Iterable[Event],
        on_error: RecoveryPolicy | str = RecoveryPolicy.STRICT,
        report: ErrorReport | None = None,
    ) -> dict[str, bool]:
        """Boolean matching: which subscriptions does the stream match?

        Networks are dropped from the hot loop as soon as their query
        produces a first match, so highly selective subscription sets get
        cheaper as the document streams by.

        Under ``on_error="skip"``/``"repair"`` a multi-document source
        is evaluated document by document: malformed or limit-tripping
        documents are recorded in ``report`` and excluded, and each
        query's verdict is ``True`` iff it matched any *surviving*
        document.
        """
        policy = as_policy(on_error)
        if policy is not RecoveryPolicy.STRICT:
            report = report if report is not None else ErrorReport()
            matched = {query_id: False for query_id in self.queries}
            for document in recovered_documents(
                iter_events(source), policy, report
            ):
                doc_index = report.documents_seen - 1
                try:
                    verdicts = self._filter_one(document)
                except ResourceLimitError as exc:
                    report.add(doc_index, str(exc), "limit")
                    report.documents_skipped += 1
                    continue
                for query_id, hit in verdicts.items():
                    matched[query_id] = matched[query_id] or hit
                if all(matched.values()):
                    break
            return matched
        return self._filter_one(
            recovering(
                iter_events(source), RecoveryPolicy.STRICT, require_end=False
            )
        )

    def _filter_one(self, events: Iterable[Event]) -> dict[str, bool]:
        """One first-match-short-circuit boolean pass over ``events``."""
        networks = self._compile_all(collect_events=False)
        core = self._fastlane_core
        matched: dict[str, bool] = {query_id: False for query_id in self.queries}
        live = dict(networks)
        for event in events:
            if not live:
                break
            if core is not None:
                core.advance(event)
            done: list[str] = []
            for query_id, network in live.items():
                if network.process_event(event):
                    matched[query_id] = True
                    done.append(query_id)
            for query_id in done:
                network = live.pop(query_id)
                deactivate = getattr(network, "deactivate", None)
                if deactivate is not None:
                    deactivate()
        return matched

    def filter_stream(
        self,
        source: Iterable[Event],
        on_error: RecoveryPolicy | str = RecoveryPolicy.STRICT,
        report: ErrorReport | None = None,
    ) -> Iterator[dict[str, bool]]:
        """SDI over a *sequence* of documents on one connection.

        Splits a concatenated multi-document stream (see
        :func:`repro.xmlstream.split_documents`) and yields, per
        document, the boolean match verdict of every subscription — the
        routing decision the paper's Sec. I scenario needs.

        With a non-strict ``on_error`` policy, documents the recovery
        layer quarantines (and documents that trip a resource limit)
        yield no verdict; their error records land in ``report`` and the
        connection keeps flowing.
        """
        policy = as_policy(on_error)
        if policy is RecoveryPolicy.STRICT:
            from ..xmlstream.documents import split_documents

            for document in split_documents(iter_events(source)):
                yield self._filter_one(document)
            return
        report = report if report is not None else ErrorReport()
        for document in recovered_documents(
            iter_events(source), policy, report, require_end=False
        ):
            doc_index = report.documents_seen - 1
            try:
                yield self._filter_one(document)
            except ResourceLimitError as exc:
                report.add(doc_index, str(exc), "limit")
                report.documents_skipped += 1


class ServePump:
    """Push-mode bulkhead state machine: one :meth:`feed` per event.

    Both serving entry points run through this class —
    :meth:`MultiQueryEngine.serve` pulls a source iterable through it,
    and the asyncio service frontend (:mod:`repro.service`) pushes
    events arriving over the network into it.  Every bulkhead semantic
    of the serving layer (quarantine, breakers, deadlines, shedding,
    document-boundary re-admission) therefore has exactly one
    implementation, and a network subscriber's match stream is
    bit-identical to an offline :meth:`~MultiQueryEngine.serve` pass by
    construction.

    On top of the per-event transition the pump supports the *dynamic
    subscription set* a long-lived service needs: :meth:`attach`
    registers a query mid-pass (it joins at the next document boundary,
    the same place breaker re-admissions happen), and :meth:`close`
    withdraws one (a departed subscriber) without the breaker penalty a
    quarantine carries.

    Not thread-safe: feed/attach/close must come from one driver.
    """

    def __init__(
        self,
        engine: MultiQueryEngine,
        live: dict[str, Network],
        policy: ServingPolicy,
        serving: ServingReport,
        breakers: dict[str, CircuitBreaker],
        clock: Clock,
        cursor: StreamCursor | None = None,
    ) -> None:
        self._engine = engine
        self._live = live
        self.policy = policy
        self.serving = serving
        self._breakers = breakers
        self._clock = clock
        self._cursor = cursor
        #: set once the stream deadline expired: the pass is over and
        #: further :meth:`feed` calls are a :class:`~repro.errors.EngineError`.
        self.finished = False
        self._stream_deadline = (
            clock.monotonic() + policy.stream_deadline
            if policy.stream_deadline is not None
            else None
        )
        self._doc_deadline: float | None = None
        #: whether a ``<$>`` has been fed and its ``</$>`` has not —
        #: the drain logic of the service uses this to stop at a
        #: document-boundary checkpoint.
        self.in_document = False

    # ------------------------------------------------------------------
    # introspection

    @property
    def live_queries(self) -> list[str]:
        """Queries currently attached to the pass (sorted)."""
        return sorted(self._live)

    @property
    def at_document_boundary(self) -> bool:
        """True between documents — the checkpoint-commit positions."""
        return not self.in_document

    @property
    def cursor(self) -> StreamCursor | None:
        """The pass's stream cursor (``None`` for uncheckpointable pumps)."""
        return self._cursor

    # ------------------------------------------------------------------
    # dynamic subscription set

    def attach(self, query_id: str) -> bool:
        """Join a (freshly registered) query; effective next document.

        The query must already be registered on the engine
        (:meth:`MultiQueryEngine.add_query`, which classifies admission
        and runs pre-flight).  Returns ``False`` when admission rejected
        the query — its outcome then reads ``rejected`` with the
        ``ADMIT`` code, and it never touches the stream.  Admitted
        queries join at the next ``<$>`` through the same re-admission
        path a recovered breaker uses, so mid-document joins can never
        observe a half-seen document.
        """
        if query_id in self._breakers:
            raise EngineError(f"query {query_id!r} is already attached")
        if query_id not in self._engine.queries:
            raise EngineError(
                f"query {query_id!r} is not registered on the engine"
            )
        if not self._engine._admission_outcome(self.serving, query_id):
            return False
        self._breakers[query_id] = CircuitBreaker(self.policy.breaker)
        return True

    def close(
        self,
        query_id: str,
        status: str = "closed",
        code: str | None = None,
        reason: str | None = None,
        degraded: bool = False,
    ) -> list[Match]:
        """Withdraw a query from the pass (a departed subscriber).

        Unlike a quarantine this is not a failure: no breaker trip, no
        ``degraded`` mark unless the caller says so (the service marks
        forced disconnects — overflow, write timeout — degraded, and
        voluntary unsubscribes clean).  Returns the query's already-
        decided but undelivered matches so the caller can flush them.
        """
        if self._breakers.pop(query_id, None) is None:
            return []
        outcome = self.serving.outcome(query_id)
        outcome.status = status
        outcome.code = code
        outcome.reason = reason
        if degraded:
            outcome.degraded = True
        network = self._live.pop(query_id, None)
        flushed: list[Match] = []
        if network is not None:
            for sink in network.sinks:
                flushed.extend(sink.results)
                sink.results.clear()
            deactivate = getattr(network, "deactivate", None)
            if deactivate is not None:
                deactivate()
        outcome.matches += len(flushed)
        return flushed

    # ------------------------------------------------------------------
    # the per-event transition

    def feed(self, event: Event) -> list[tuple[str, Match]]:
        """Process one event; return its ``(query_id, match)`` pairs.

        Semantics are exactly those of the documented
        :meth:`MultiQueryEngine.serve` loop: document boundaries
        re-admit breakers and (re)arm the document deadline, expired
        deadlines detach with ``DEADLINE_*`` outcomes (a stream-deadline
        expiry additionally marks the pump :attr:`finished`), failing
        queries are quarantined with their partial matches flushed, and
        buffer pressure sheds the lowest-priority queries.
        """
        if self.finished:
            raise EngineError("serving pass is finished (stream deadline)")
        engine = self._engine
        live = self._live
        policy = self.policy
        serving = self.serving
        breakers = self._breakers
        clock = self._clock
        robustness = engine.robustness
        out: list[tuple[str, Match]] = []
        if self._cursor is not None:
            self._cursor.advance(event)
        cls = event.__class__
        if cls is StartDocument:
            self.in_document = True
            serving.documents_seen += 1
            if policy.doc_deadline is not None:
                self._doc_deadline = clock.monotonic() + policy.doc_deadline
            for query_id in breakers:
                if query_id not in live:
                    engine._readmit(live, serving, breakers, query_id, clock)
        if self._stream_deadline is not None or policy.doc_deadline is not None:
            now = clock.monotonic()
            if self._stream_deadline is not None and now > self._stream_deadline:
                reason = str(
                    DeadlineExceeded(
                        f"stream deadline of {policy.stream_deadline}s "
                        f"expired",
                        scope="stream",
                    )
                )
                for query_id in list(live):
                    flushed = engine._detach(
                        live, serving, query_id, "deadline",
                        "DEADLINE_STREAM", reason,
                    )
                    serving.deadline_hits += 1
                    robustness.deadline_hits += 1
                    out.extend((query_id, match) for match in flushed)
                self.finished = True
                return out
            if self._doc_deadline is not None and now > self._doc_deadline and live:
                reason = str(
                    DeadlineExceeded(
                        f"document deadline of {policy.doc_deadline}s "
                        f"expired",
                        scope="document",
                    )
                )
                for query_id in list(live):
                    flushed = engine._detach(
                        live, serving, query_id, "deadline",
                        "DEADLINE_DOC", reason,
                    )
                    serving.deadline_hits += 1
                    robustness.deadline_hits += 1
                    out.extend((query_id, match) for match in flushed)
                self._doc_deadline = None
        core = engine._fastlane_core
        if core is not None:
            core.advance(event)
        for query_id in list(live):
            network = live[query_id]
            try:
                matches = network.process_event(event)
            except Exception as exc:
                if not policy.quarantine:
                    raise
                flushed = engine._quarantine(
                    live, serving, breakers, query_id, exc
                )
                out.extend((query_id, match) for match in flushed)
                continue
            if matches:
                serving.outcome(query_id).matches += len(matches)
                out.extend((query_id, match) for match in matches)
        if cls is EndDocument:
            self.in_document = False
            self._doc_deadline = None
            for query_id in live:
                if breakers[query_id].record_document_success():
                    serving.outcome(query_id).readmissions += 1
                    serving.readmissions += 1
                    robustness.readmissions += 1
        if policy.shed_buffered_events is not None and live:
            total = sum(
                sum(s.buffered_events for s in network.sinks)
                for network in live.values()
            )
            if total > policy.shed_buffered_events:
                out.extend(engine._shed(live, serving, policy, total))
        return out


def _spine(expr: Rpeq) -> list[Rpeq]:
    """Flatten the left spine of concatenations into a step list.

    ``(a.b).c`` becomes ``[a, b, c]`` — the granularity at which the
    shared network deduplicates work across queries.
    """
    if isinstance(expr, Concat):
        return _spine(expr.left) + _spine(expr.right)
    return [expr]


class SharedNetworkEngine:
    """Many queries in ONE transducer network with shared prefixes.

    The paper's conclusion: "A single transducer network can be used for
    processing several queries having common subparts. Such a multi-query
    processor could be a corner stone of efficient XSLT and XQuery
    implementations."  This engine implements the prefix variant of that
    idea: queries are flattened into step sequences and inserted into a
    trie; each trie node is compiled once, so queries sharing a prefix
    (``_*.country.name`` / ``_*.country.population`` share ``_*`` and
    ``country``) share the corresponding transducers, and every query
    gets its own output sink hanging off its last trie node.

    Correctness across sinks relies on the condition store's broadcast/
    retain/deferred-release protocol (see
    :class:`repro.conditions.store.ConditionStore`).
    """

    def __init__(
        self,
        queries: Mapping[str, str | Rpeq] | Iterable[str],
        collect_events: bool = False,
        limits: ResourceLimits | None = None,
    ) -> None:
        if isinstance(queries, Mapping):
            items = list(queries.items())
        else:
            items = [(text, text) for text in queries]
        self.queries: dict[str, Rpeq] = {
            query_id: parse(query) if isinstance(query, str) else query
            for query_id, query in items
        }
        self.collect_events = collect_events
        self.limits = limits

    def __len__(self) -> int:
        return len(self.queries)

    def compile(self) -> tuple[Network, dict[str, OutputTransducer]]:
        """Build the shared network; one sink per query."""
        store = ConditionStore()
        allocator = VariableAllocator()
        source = InputTransducer()
        network = Network(source, sink=None, limits=self.limits)
        compiler = _Compiler(network, allocator, store)
        # Trie of compiled step prefixes: maps (id of tape transducer,
        # step AST) -> tape after that step.
        compiled: dict[tuple[int, Rpeq], object] = {}
        sinks: dict[str, OutputTransducer] = {}
        for query_id, expr in self.queries.items():
            tape = source
            for step in _spine(expr):
                key = (id(tape), step)
                next_tape = compiled.get(key)
                if next_tape is None:
                    next_tape, _owned = compiler.compile(step, tape)
                    compiled[key] = next_tape
                tape = next_tape
            sink = OutputTransducer(
                store, collect_events=self.collect_events, limits=self.limits
            )
            sink.name = f"OU({query_id})"
            network.add(sink, tape)
            sinks[query_id] = sink
        network.condition_store = store
        network.allocator = allocator
        network.finalize()
        return network, sinks

    def run(self, source: str | Iterable[Event]) -> Iterator[tuple[str, Match]]:
        """One stream pass; yields ``(query_id, match)`` progressively."""
        network, sinks = self.compile()
        for event in iter_events(source):
            network.process_event(event)
            for query_id, sink in sinks.items():
                while sink.results:
                    yield query_id, sink.results.popleft()

    def evaluate(self, source: str | Iterable[Event]) -> dict[str, list[Match]]:
        """All matches per query, eagerly."""
        results: dict[str, list[Match]] = {query_id: [] for query_id in self.queries}
        for query_id, match in self.run(source):
            results[query_id].append(match)
        return results

    def network_degree(self) -> int:
        """Transducer count of the shared network (vs. sum of singles)."""
        network, _sinks = self.compile()
        return network.degree
