"""Evaluating many queries against one stream — the SDI scenario.

Selective dissemination of information (the paper's motivating use case
and the setting of the XFilter/YFilter related work, Sec. VIII) evaluates
thousands of subscription queries against each incoming document.  The
paper's conclusion names multi-query processing as the natural next step
for SPEX; this module provides the straightforward shared-pass variant:
every query keeps its own network, the stream is read **once**, and each
event is pushed through all networks.

Two consumption styles:

* :meth:`MultiQueryEngine.run` — full evaluation; yields
  ``(query_id, match)`` pairs progressively.
* :meth:`MultiQueryEngine.filter_documents` — XFilter-style boolean
  matching: report, per query, whether the document matches at all.
  Networks whose query has matched are skipped for the rest of the
  document (first-match short-circuit).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..conditions.store import ConditionStore, VariableAllocator
from ..errors import CheckpointError, EngineError, ResourceLimitError
from ..limits import ResourceLimits
from ..rpeq.ast import Concat, Rpeq
from ..rpeq.parser import parse
from ..rpeq.unparse import unparse
from ..xmlstream.events import Event
from ..xmlstream.offsets import StreamCursor, skip_events
from ..xmlstream.parser import iter_events
from ..xmlstream.recovery import (
    ErrorReport,
    RecoveryPolicy,
    as_policy,
    recovered_documents,
    recovering,
)
from .checkpoint import Checkpoint
from .compiler import _Compiler, compile_network
from .engine import RobustnessCounters
from .network import Network
from .output_tx import Match, OutputTransducer
from .path_transducers import InputTransducer


class MultiQueryEngine:
    """One stream pass, many rpeq queries."""

    def __init__(
        self,
        queries: Mapping[str, str | Rpeq] | Iterable[str],
        collect_events: bool = False,
        limits: ResourceLimits | None = None,
        preflight: bool = True,
    ) -> None:
        """Register subscription queries.

        Args:
            queries: either a mapping ``query_id -> query`` or a plain
                iterable of query strings (ids are then the strings
                themselves).
            collect_events: whether matches should carry event fragments;
                off by default, as SDI workloads usually need match
                notifications, not reconstructed fragments.
            limits: resource guards applied to every network (see
                :class:`repro.limits.ResourceLimits`) — on a shared
                SDI pass, the defense that keeps one depth-bomb document
                from taking every subscription down with it.
            preflight: statically analyze every registered query before
                accepting the engine; per-query reports are kept in
                :attr:`analysis`.

        Raises:
            StaticAnalysisError: pre-flight analysis rejected one of the
                queries (the exception names the offending query id).
        """
        if isinstance(queries, Mapping):
            items = list(queries.items())
        else:
            items = [(text, text) for text in queries]
        self.queries: dict[str, Rpeq] = {
            query_id: parse(query) if isinstance(query, str) else query
            for query_id, query in items
        }
        self.collect_events = collect_events
        self.limits = limits
        #: per-query pre-flight reports (``None`` with ``preflight=False``)
        self.analysis = None
        if preflight:
            from ..analysis.preflight import ensure_preflight
            from ..errors import StaticAnalysisError

            reports = {}
            for query_id, query in self.queries.items():
                try:
                    reports[query_id] = ensure_preflight(
                        query,
                        limits=limits,
                        collect_events=collect_events,
                    )
                except StaticAnalysisError as exc:
                    raise StaticAnalysisError(
                        f"query {query_id!r}: {exc}", report=exc.report
                    ) from exc
            self.analysis = reports
        #: lifetime recovery counters, mirroring ``SpexEngine.robustness``
        self.robustness = RobustnessCounters()
        self._last_networks: dict[str, Network] | None = None
        self._last_cursor: StreamCursor | None = None

    def __len__(self) -> int:
        return len(self.queries)

    def _compile_all(self) -> dict[str, Network]:
        return {
            query_id: compile_network(
                query, collect_events=self.collect_events, limits=self.limits
            )[0]
            for query_id, query in self.queries.items()
        }

    def run(
        self,
        source: str | Iterable[Event],
        on_error: RecoveryPolicy | str = RecoveryPolicy.STRICT,
        report: ErrorReport | None = None,
        cursor: StreamCursor | None = None,
    ) -> Iterator[tuple[str, Match]]:
        """Evaluate all queries in one pass; yield matches progressively.

        With ``on_error="skip"``/``"repair"`` the source is treated as a
        sequence of documents; a malformed document (or one that trips a
        resource limit) files a per-document record in ``report`` and
        the pass continues with the next document, fresh networks and
        all — one poisoned subscriber document no longer kills the
        shared pipeline.

        Passing a ``cursor`` (strict mode only) makes the pass
        checkpointable via :meth:`checkpoint`, as for
        :meth:`SpexEngine.run <repro.core.engine.SpexEngine.run>`.
        """
        policy = as_policy(on_error)
        if policy is not RecoveryPolicy.STRICT:
            if cursor is not None:
                raise EngineError(
                    "checkpoint cursors require on_error='strict' (recovery "
                    "policies re-segment the source per document)"
                )
            self._last_cursor = None
            yield from self._run_recovering(source, policy, report)
            return
        networks = self._compile_all()
        self._last_networks = networks
        self._last_cursor = cursor
        # Strict runs validate on the fly, so malformed input raises the
        # documented StreamError instead of silently confusing every
        # subscription's transducer stacks at once.
        events = recovering(
            iter_events(source), RecoveryPolicy.STRICT, require_end=False
        )
        if cursor is not None:
            events = cursor.attach(events)
        for event in events:
            for query_id, network in networks.items():
                for match in network.process_event(event):
                    yield query_id, match

    def _run_recovering(
        self,
        source: str | Iterable[Event],
        policy: RecoveryPolicy,
        report: ErrorReport | None,
    ) -> Iterator[tuple[str, Match]]:
        report = report if report is not None else ErrorReport()
        for document in recovered_documents(iter_events(source), policy, report):
            networks = self._compile_all()
            matches: list[tuple[str, Match]] = []
            doc_index = report.documents_seen - 1
            try:
                for event in document:
                    for query_id, network in networks.items():
                        for match in network.process_event(event):
                            matches.append((query_id, match))
            except ResourceLimitError as exc:
                report.add(doc_index, str(exc), "limit")
                report.documents_skipped += 1
                continue
            yield from matches

    # ------------------------------------------------------------------
    # checkpoint / resume

    def checkpoint(self) -> Checkpoint:
        """Capture the in-flight shared pass as a :class:`Checkpoint`.

        Valid between events of a strict :meth:`run` that was given a
        ``cursor``; every subscription's network, condition store and
        variable allocator is snapshotted against the one shared source
        position.

        Raises:
            CheckpointError: no cursor-tracked strict pass to capture.
        """
        if self._last_cursor is None or self._last_networks is None:
            raise CheckpointError(
                "nothing to checkpoint: pass a StreamCursor to run() "
                "(strict mode) and start consuming it first"
            )
        payload = {
            "queries": {
                query_id: unparse(query)
                for query_id, query in self.queries.items()
            },
            "collect_events": self.collect_events,
            "cursor": self._last_cursor.state(),
            "networks": {
                query_id: {
                    "network": network.snapshot(),
                    "store": network.condition_store.snapshot(),
                    "allocator": network.allocator.snapshot(),
                }
                for query_id, network in self._last_networks.items()
            },
        }
        self.robustness.checkpoints_written += 1
        return Checkpoint(kind="multiquery", payload=payload)

    def resume(
        self,
        checkpoint: Checkpoint,
        source: str | Iterable[Event],
    ) -> Iterator[tuple[str, Match]]:
        """Continue a checkpointed shared pass against ``source``.

        Same contract as :meth:`SpexEngine.resume
        <repro.core.engine.SpexEngine.resume>`: the source must replay
        the stream the checkpoint was taken from; matches before the
        checkpoint plus matches after this resume equal an uninterrupted
        pass.  Compatibility checks are eager.

        Raises:
            CheckpointError: the checkpoint came from a different engine
                kind, a different subscription set, or different options.
            StreamError: ``source`` is shorter than the checkpointed
                position.
        """
        payload = checkpoint.require("multiquery")
        have = {
            query_id: unparse(query) for query_id, query in self.queries.items()
        }
        if payload["queries"] != have:
            raise CheckpointError(
                "checkpoint subscription set does not match this engine's "
                "queries"
            )
        if bool(payload["collect_events"]) != self.collect_events:
            raise CheckpointError(
                f"checkpoint was taken with collect_events="
                f"{bool(payload['collect_events'])}, engine has "
                f"collect_events={self.collect_events}"
            )
        networks = self._compile_all()
        for query_id, network in networks.items():
            states = payload["networks"][query_id]
            network.restore(states["network"])
            network.condition_store.restore(states["store"])
            network.allocator.restore(states["allocator"])
        cursor = StreamCursor.from_state(payload["cursor"])
        self._last_networks = networks
        self._last_cursor = cursor
        self.robustness.restores += 1
        events = skip_events(iter_events(source), cursor.events_read)
        # The strict validator is primed with the envelope state at the
        # cut, exactly as the uninterrupted pass would have reached it.
        events = recovering(
            events,
            RecoveryPolicy.STRICT,
            require_end=False,
            resume=payload["cursor"],
        )
        events = cursor.attach(events)
        return self._pump(networks, events)

    @staticmethod
    def _pump(
        networks: dict[str, Network], events: Iterable[Event]
    ) -> Iterator[tuple[str, Match]]:
        """Generator tail of :meth:`resume` (verification stays eager)."""
        for event in events:
            for query_id, network in networks.items():
                for match in network.process_event(event):
                    yield query_id, match

    @classmethod
    def from_checkpoint(
        cls,
        checkpoint: Checkpoint,
        limits: ResourceLimits | None = None,
    ) -> "MultiQueryEngine":
        """Build an engine matching the checkpoint's subscription set."""
        payload = checkpoint.require("multiquery")
        return cls(
            dict(payload["queries"]),
            collect_events=bool(payload["collect_events"]),
            limits=limits,
        )

    def evaluate(
        self,
        source: str | Iterable[Event],
        on_error: RecoveryPolicy | str = RecoveryPolicy.STRICT,
        report: ErrorReport | None = None,
    ) -> dict[str, list[Match]]:
        """All matches per query, eagerly."""
        results: dict[str, list[Match]] = {query_id: [] for query_id in self.queries}
        for query_id, match in self.run(source, on_error=on_error, report=report):
            results[query_id].append(match)
        return results

    def filter_documents(
        self,
        source: str | Iterable[Event],
        on_error: RecoveryPolicy | str = RecoveryPolicy.STRICT,
        report: ErrorReport | None = None,
    ) -> dict[str, bool]:
        """Boolean matching: which subscriptions does the stream match?

        Networks are dropped from the hot loop as soon as their query
        produces a first match, so highly selective subscription sets get
        cheaper as the document streams by.

        Under ``on_error="skip"``/``"repair"`` a multi-document source
        is evaluated document by document: malformed or limit-tripping
        documents are recorded in ``report`` and excluded, and each
        query's verdict is ``True`` iff it matched any *surviving*
        document.
        """
        policy = as_policy(on_error)
        if policy is not RecoveryPolicy.STRICT:
            report = report if report is not None else ErrorReport()
            matched = {query_id: False for query_id in self.queries}
            for document in recovered_documents(
                iter_events(source), policy, report
            ):
                doc_index = report.documents_seen - 1
                try:
                    verdicts = self._filter_one(document)
                except ResourceLimitError as exc:
                    report.add(doc_index, str(exc), "limit")
                    report.documents_skipped += 1
                    continue
                for query_id, hit in verdicts.items():
                    matched[query_id] = matched[query_id] or hit
                if all(matched.values()):
                    break
            return matched
        return self._filter_one(
            recovering(
                iter_events(source), RecoveryPolicy.STRICT, require_end=False
            )
        )

    def _filter_one(self, events: Iterable[Event]) -> dict[str, bool]:
        """One first-match-short-circuit boolean pass over ``events``."""
        networks = {
            query_id: compile_network(
                query, collect_events=False, limits=self.limits
            )[0]
            for query_id, query in self.queries.items()
        }
        matched: dict[str, bool] = {query_id: False for query_id in self.queries}
        live = dict(networks)
        for event in events:
            if not live:
                break
            done: list[str] = []
            for query_id, network in live.items():
                if network.process_event(event):
                    matched[query_id] = True
                    done.append(query_id)
            for query_id in done:
                del live[query_id]
        return matched

    def filter_stream(
        self,
        source: Iterable[Event],
        on_error: RecoveryPolicy | str = RecoveryPolicy.STRICT,
        report: ErrorReport | None = None,
    ) -> Iterator[dict[str, bool]]:
        """SDI over a *sequence* of documents on one connection.

        Splits a concatenated multi-document stream (see
        :func:`repro.xmlstream.split_documents`) and yields, per
        document, the boolean match verdict of every subscription — the
        routing decision the paper's Sec. I scenario needs.

        With a non-strict ``on_error`` policy, documents the recovery
        layer quarantines (and documents that trip a resource limit)
        yield no verdict; their error records land in ``report`` and the
        connection keeps flowing.
        """
        policy = as_policy(on_error)
        if policy is RecoveryPolicy.STRICT:
            from ..xmlstream.documents import split_documents

            for document in split_documents(iter_events(source)):
                yield self._filter_one(document)
            return
        report = report if report is not None else ErrorReport()
        for document in recovered_documents(
            iter_events(source), policy, report, require_end=False
        ):
            doc_index = report.documents_seen - 1
            try:
                yield self._filter_one(document)
            except ResourceLimitError as exc:
                report.add(doc_index, str(exc), "limit")
                report.documents_skipped += 1


def _spine(expr: Rpeq) -> list[Rpeq]:
    """Flatten the left spine of concatenations into a step list.

    ``(a.b).c`` becomes ``[a, b, c]`` — the granularity at which the
    shared network deduplicates work across queries.
    """
    if isinstance(expr, Concat):
        return _spine(expr.left) + _spine(expr.right)
    return [expr]


class SharedNetworkEngine:
    """Many queries in ONE transducer network with shared prefixes.

    The paper's conclusion: "A single transducer network can be used for
    processing several queries having common subparts. Such a multi-query
    processor could be a corner stone of efficient XSLT and XQuery
    implementations."  This engine implements the prefix variant of that
    idea: queries are flattened into step sequences and inserted into a
    trie; each trie node is compiled once, so queries sharing a prefix
    (``_*.country.name`` / ``_*.country.population`` share ``_*`` and
    ``country``) share the corresponding transducers, and every query
    gets its own output sink hanging off its last trie node.

    Correctness across sinks relies on the condition store's broadcast/
    retain/deferred-release protocol (see
    :class:`repro.conditions.store.ConditionStore`).
    """

    def __init__(
        self,
        queries: Mapping[str, str | Rpeq] | Iterable[str],
        collect_events: bool = False,
        limits: ResourceLimits | None = None,
    ) -> None:
        if isinstance(queries, Mapping):
            items = list(queries.items())
        else:
            items = [(text, text) for text in queries]
        self.queries: dict[str, Rpeq] = {
            query_id: parse(query) if isinstance(query, str) else query
            for query_id, query in items
        }
        self.collect_events = collect_events
        self.limits = limits

    def __len__(self) -> int:
        return len(self.queries)

    def compile(self) -> tuple[Network, dict[str, OutputTransducer]]:
        """Build the shared network; one sink per query."""
        store = ConditionStore()
        allocator = VariableAllocator()
        source = InputTransducer()
        network = Network(source, sink=None, limits=self.limits)
        compiler = _Compiler(network, allocator, store)
        # Trie of compiled step prefixes: maps (id of tape transducer,
        # step AST) -> tape after that step.
        compiled: dict[tuple[int, Rpeq], object] = {}
        sinks: dict[str, OutputTransducer] = {}
        for query_id, expr in self.queries.items():
            tape = source
            for step in _spine(expr):
                key = (id(tape), step)
                next_tape = compiled.get(key)
                if next_tape is None:
                    next_tape, _owned = compiler.compile(step, tape)
                    compiled[key] = next_tape
                tape = next_tape
            sink = OutputTransducer(
                store, collect_events=self.collect_events, limits=self.limits
            )
            sink.name = f"OU({query_id})"
            network.add(sink, tape)
            sinks[query_id] = sink
        network.condition_store = store
        network.allocator = allocator
        network.finalize()
        return network, sinks

    def run(self, source: str | Iterable[Event]) -> Iterator[tuple[str, Match]]:
        """One stream pass; yields ``(query_id, match)`` progressively."""
        network, sinks = self.compile()
        for event in iter_events(source):
            network.process_event(event)
            for query_id, sink in sinks.items():
                while sink.results:
                    yield query_id, sink.results.popleft()

    def evaluate(self, source: str | Iterable[Event]) -> dict[str, list[Match]]:
        """All matches per query, eagerly."""
        results: dict[str, list[Match]] = {query_id: [] for query_id in self.queries}
        for query_id, match in self.run(source):
            results[query_id].append(match)
        return results

    def network_degree(self) -> int:
        """Transducer count of the shared network (vs. sum of singles)."""
        network, _sinks = self.compile()
        return network.degree
