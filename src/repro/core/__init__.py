"""SPEX core: messages, transducers, networks, compiler, engine.

This package is the paper's primary contribution — the streamed and
progressive evaluation model of Sec. III.
"""

from .checkpoint import CHECKPOINT_VERSION, Checkpoint
from .compiler import compile_network
from .engine import EngineStats, RobustnessCounters, SpexEngine, evaluate
from .supervisor import (
    StallError,
    Supervisor,
    SupervisorConfig,
    SupervisorReport,
    supervise,
)
from .flow_transducers import JoinTransducer, SplitTransducer, UnionTransducer
from .messages import Activation, Close, Contribute, Doc, Message
from .network import Network, NetworkStats
from .dispatch import Dispatcher, DispatchReport
from .multiquery import MultiQueryEngine, SharedNetworkEngine
from .output_tx import Match, OutputStats, OutputTransducer
from .trace import Tracer, trace_run
from .path_transducers import (
    ChildTransducer,
    ClosureTransducer,
    InputTransducer,
    StarTransducer,
)
from .qualifier_transducers import (
    VariableCreator,
    VariableDeterminant,
    VariableFilter,
)
from .transducer import Transducer, TransducerStats

__all__ = [
    "Activation",
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "ChildTransducer",
    "Close",
    "ClosureTransducer",
    "Contribute",
    "DispatchReport",
    "Dispatcher",
    "Doc",
    "EngineStats",
    "InputTransducer",
    "JoinTransducer",
    "Match",
    "Message",
    "MultiQueryEngine",
    "Network",
    "NetworkStats",
    "OutputStats",
    "OutputTransducer",
    "RobustnessCounters",
    "SharedNetworkEngine",
    "SpexEngine",
    "SplitTransducer",
    "StallError",
    "StarTransducer",
    "Supervisor",
    "SupervisorConfig",
    "SupervisorReport",
    "Tracer",
    "Transducer",
    "TransducerStats",
    "UnionTransducer",
    "VariableCreator",
    "VariableDeterminant",
    "VariableFilter",
    "compile_network",
    "evaluate",
    "supervise",
    "trace_run",
]
