"""SPEX core: messages, transducers, networks, compiler, engine.

This package is the paper's primary contribution — the streamed and
progressive evaluation model of Sec. III.
"""

from .compiler import compile_network
from .engine import EngineStats, SpexEngine, evaluate
from .flow_transducers import JoinTransducer, SplitTransducer, UnionTransducer
from .messages import Activation, Close, Contribute, Doc, Message
from .network import Network, NetworkStats
from .dispatch import Dispatcher, DispatchReport
from .multiquery import MultiQueryEngine, SharedNetworkEngine
from .output_tx import Match, OutputStats, OutputTransducer
from .trace import Tracer, trace_run
from .path_transducers import (
    ChildTransducer,
    ClosureTransducer,
    InputTransducer,
    StarTransducer,
)
from .qualifier_transducers import (
    VariableCreator,
    VariableDeterminant,
    VariableFilter,
)
from .transducer import Transducer, TransducerStats

__all__ = [
    "Activation",
    "ChildTransducer",
    "Close",
    "ClosureTransducer",
    "Contribute",
    "DispatchReport",
    "Dispatcher",
    "Doc",
    "EngineStats",
    "InputTransducer",
    "JoinTransducer",
    "Match",
    "Message",
    "MultiQueryEngine",
    "Network",
    "NetworkStats",
    "OutputStats",
    "OutputTransducer",
    "SharedNetworkEngine",
    "SpexEngine",
    "SplitTransducer",
    "StarTransducer",
    "Tracer",
    "Transducer",
    "TransducerStats",
    "UnionTransducer",
    "VariableCreator",
    "VariableDeterminant",
    "VariableFilter",
    "compile_network",
    "evaluate",
    "trace_run",
]
