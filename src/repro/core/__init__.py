"""SPEX core: messages, transducers, networks, compiler, engine.

This package is the paper's primary contribution — the streamed and
progressive evaluation model of Sec. III.
"""

from .checkpoint import CHECKPOINT_VERSION, Checkpoint
from .clock import SYSTEM_CLOCK, Clock, FakeClock, SystemClock, as_clock
from .compiler import compile_network
from .engine import EngineStats, RobustnessCounters, SpexEngine, evaluate
from .serving import (
    AdmissionDecision,
    AdmissionPolicy,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    QueryOutcome,
    ServingPolicy,
    ServingReport,
    classify_admission,
    ensure_admitted,
)
from .supervisor import (
    StallError,
    Supervisor,
    SupervisorConfig,
    SupervisorReport,
    supervise,
)
from .flow_transducers import JoinTransducer, SplitTransducer, UnionTransducer
from .messages import Activation, Close, Contribute, Doc, Message
from .network import Network, NetworkStats
from .dispatch import Dispatcher, DispatchReport
from .multiquery import MultiQueryEngine, SharedNetworkEngine
from .output_tx import Match, OutputStats, OutputTransducer
from .trace import Tracer, trace_run
from .path_transducers import (
    ChildTransducer,
    ClosureTransducer,
    InputTransducer,
    StarTransducer,
)
from .qualifier_transducers import (
    VariableCreator,
    VariableDeterminant,
    VariableFilter,
)
from .transducer import Transducer, TransducerStats

__all__ = [
    "Activation",
    "AdmissionDecision",
    "AdmissionPolicy",
    "BreakerPolicy",
    "BreakerState",
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "ChildTransducer",
    "CircuitBreaker",
    "Clock",
    "Close",
    "ClosureTransducer",
    "Contribute",
    "DispatchReport",
    "Dispatcher",
    "Doc",
    "EngineStats",
    "FakeClock",
    "InputTransducer",
    "JoinTransducer",
    "Match",
    "Message",
    "MultiQueryEngine",
    "Network",
    "NetworkStats",
    "OutputStats",
    "OutputTransducer",
    "QueryOutcome",
    "RobustnessCounters",
    "SYSTEM_CLOCK",
    "ServingPolicy",
    "ServingReport",
    "SharedNetworkEngine",
    "SpexEngine",
    "SplitTransducer",
    "StallError",
    "StarTransducer",
    "Supervisor",
    "SupervisorConfig",
    "SupervisorReport",
    "SystemClock",
    "Tracer",
    "Transducer",
    "TransducerStats",
    "UnionTransducer",
    "VariableCreator",
    "VariableDeterminant",
    "VariableFilter",
    "as_clock",
    "classify_admission",
    "compile_network",
    "ensure_admitted",
    "evaluate",
    "supervise",
    "trace_run",
]
