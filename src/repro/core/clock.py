"""One time source for the whole codebase.

Deadlines, backoff, stall watchdogs and latency injection all need a
clock; tests need to *control* that clock.  Before this module each
consumer reached for :func:`time.monotonic`/:func:`time.sleep` directly,
which made wall-clock behaviour untestable without real sleeping.
:class:`Clock` is the single injectable abstraction: production code
uses :data:`SYSTEM_CLOCK`, tests pass a :class:`FakeClock` and advance
it deterministically.

Adopters: :class:`~repro.core.supervisor.Supervisor` (backoff and
checkpoint cadence), :class:`~repro.core.network.Network` (per-document
wall-clock budget), the serving layer
(:mod:`repro.core.serving` deadlines), and
:class:`~repro.xmlstream.faults.FaultInjector` (``stall`` and
``slow_source`` latency injection).
"""

from __future__ import annotations

import time
from typing import Callable


class Clock:
    """Injectable time source: a monotonic reading plus a sleeper."""

    def monotonic(self) -> float:
        """Seconds from an arbitrary, monotonically increasing origin."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (or simulate blocking, for fakes)."""
        raise NotImplementedError


class SystemClock(Clock):
    """The real wall clock (:func:`time.monotonic` / :func:`time.sleep`)."""

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


#: Shared default instance — stateless, so one is enough.
SYSTEM_CLOCK = SystemClock()


class FakeClock(Clock):
    """Deterministic clock for tests.

    Time moves only when told to: :meth:`advance` jumps the reading, and
    :meth:`sleep` advances it by the requested amount (so code that
    sleeps against a deadline terminates instantly in tests).  Every
    sleep is recorded for assertions.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        #: every ``sleep`` duration requested, in order
        self.sleeps: list[float] = []

    def monotonic(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        if seconds > 0:
            self._now += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward without sleeping."""
        if seconds < 0:
            raise ValueError("clocks cannot run backwards")
        self._now += seconds


class _CallableClock(Clock):
    """Adapter wrapping bare ``monotonic``/``sleep`` callables.

    Keeps the historical :class:`~repro.core.supervisor.Supervisor`
    signature (``sleep=``, ``clock=`` as plain callables) working
    unchanged on top of the unified abstraction.
    """

    def __init__(
        self,
        monotonic: Callable[[], float] | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        self._monotonic = monotonic if monotonic is not None else time.monotonic
        self._sleep = sleep if sleep is not None else time.sleep

    def monotonic(self) -> float:
        return self._monotonic()

    def sleep(self, seconds: float) -> None:
        self._sleep(seconds)


def as_clock(value: Clock | Callable[[], float] | None) -> Clock:
    """Coerce ``None`` (system), a :class:`Clock`, or a bare monotonic
    callable into a :class:`Clock`."""
    if value is None:
        return SYSTEM_CLOCK
    if isinstance(value, Clock):
        return value
    if callable(value):
        return _CallableClock(monotonic=value)
    raise TypeError(f"not a clock: {value!r}")
