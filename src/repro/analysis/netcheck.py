"""The network verifier: structural invariants of compiled SPEX networks.

The paper's Definition 3 and the Fig. 11 translation pin down what a
well-formed network looks like: a single-source DAG evaluated in
topological order, with every split eventually re-joined, every
qualifier's variable-determinant fed through its own positive variable
filter, and every transducer sharing the network's one condition store.
A compiler or rewrite bug that violates any of these produces silently
wrong answers (or unbounded buffering) at runtime; :func:`verify_network`
turns them into deterministic ``NET0xx`` diagnostics instead.

The checks intentionally reach into :class:`~repro.core.network.Network`
internals (``_predecessors``, ``_plan``): the verifier's whole job is to
re-derive the invariants those structures are supposed to satisfy, so it
must look at them directly rather than through accessors that already
assume them.
"""

from __future__ import annotations

from ..core.flow_transducers import JoinTransducer, SplitTransducer
from ..core.network import Network
from ..core.output_tx import OutputTransducer
from ..core.path_transducers import InputTransducer
from ..core.qualifier_transducers import (
    VariableCreator,
    VariableDeterminant,
    VariableFilter,
)
from ..core.transducer import Transducer
from .diagnostics import AnalysisReport, Severity, register_code

NET001 = register_code(
    "NET001", Severity.ERROR, "network", "Network not finalized"
)
NET002 = register_code(
    "NET002", Severity.ERROR, "network", "Wrong predecessor count"
)
NET003 = register_code(
    "NET003", Severity.ERROR, "network", "Cycle or topological-order violation"
)
NET004 = register_code(
    "NET004", Severity.ERROR, "network", "Source invariant violated"
)
NET005 = register_code(
    "NET005", Severity.ERROR, "network", "Sink invariant violated"
)
NET006 = register_code(
    "NET006", Severity.ERROR, "network", "Transducer unreachable from source"
)
NET007 = register_code(
    "NET007", Severity.ERROR, "network", "Unbalanced split/join"
)
NET008 = register_code(
    "NET008", Severity.ERROR, "network", "Unpaired determinant/creator/filter"
)
NET009 = register_code(
    "NET009", Severity.ERROR, "network", "Condition-variable scope violation"
)
NET010 = register_code(
    "NET010", Severity.ERROR, "network", "Execution plan inconsistent"
)


def verify_network(
    network: Network, *, report: AnalysisReport | None = None
) -> AnalysisReport:
    """Check every structural invariant of a compiled network.

    Returns the findings; a clean report (``report.ok``) certifies the
    network is a well-formed single-source DAG with paired split/join and
    creator/filter/determinant structure and consistent condition-store
    wiring.  Never raises on a malformed network — malformation is the
    thing being reported.
    """
    out = report if report is not None else AnalysisReport()
    if not network.finalized:
        out.add(NET001, "network is not finalized; no execution plan exists")
        return out

    nodes = network._nodes
    predecessors = network._predecessors
    index_of = {id(node): index for index, node in enumerate(nodes)}

    _check_shape(network, nodes, predecessors, index_of, out)
    successors = _successor_map(nodes, predecessors, index_of)
    _check_reachability(network, nodes, predecessors, successors, out)
    _check_split_join(nodes, predecessors, successors, index_of, out)
    _check_qualifier_wiring(nodes, predecessors, index_of, out)
    _check_store_discipline(network, nodes, out)
    _check_plan(network, nodes, predecessors, index_of, out)
    return out


# ----------------------------------------------------------------------
# shape: predecessor counts, topological order, source/sink counts


def _check_shape(
    network: Network,
    nodes: list[Transducer],
    predecessors: dict[int, list[Transducer]],
    index_of: dict[int, int],
    out: AnalysisReport,
) -> None:
    if not nodes or nodes[0] is not network.source:
        out.add(NET004, "node 0 is not the network's source transducer")
    sources = [node for node in nodes if isinstance(node, InputTransducer)]
    if len(sources) != 1:
        out.add(
            NET004,
            f"expected exactly one input transducer, found {len(sources)}",
            inputs=[node.name for node in sources],
        )
    sinks = [node for node in nodes if isinstance(node, OutputTransducer)]
    if not sinks:
        out.add(NET005, "network has no output transducer")
    if network.sink is not None and id(network.sink) not in index_of:
        out.add(NET005, "the designated sink is not a node of the network")

    for index, node in enumerate(nodes):
        preds = predecessors.get(id(node))
        if preds is None:
            out.add(
                NET002,
                f"{node.name}: node has no predecessor record",
                node=node.name,
            )
            continue
        expected = (
            0
            if index == 0
            else 2
            if isinstance(node, JoinTransducer)
            else 1
        )
        if len(preds) != expected:
            out.add(
                NET002,
                f"{node.name}: expected {expected} predecessor(s), "
                f"found {len(preds)}",
                node=node.name,
                expected=expected,
                found=len(preds),
            )
        if index > 0 and not preds:
            out.add(
                NET004,
                f"{node.name}: non-source node with no predecessors",
                node=node.name,
            )
        if len(preds) == 2 and preds[0] is preds[1]:
            out.add(
                NET007,
                f"{node.name}: join takes both inputs from the same "
                f"transducer {preds[0].name}",
                node=node.name,
            )
        for pred in preds:
            pred_index = index_of.get(id(pred))
            if pred_index is None:
                out.add(
                    NET003,
                    f"{node.name}: predecessor {pred.name} is not a "
                    "node of this network",
                    node=node.name,
                )
            elif pred_index >= index:
                out.add(
                    NET003,
                    f"{node.name}: predecessor {pred.name} does not "
                    "precede it in topological order (cycle or "
                    "corrupted wiring)",
                    node=node.name,
                    predecessor=pred.name,
                )


def _successor_map(
    nodes: list[Transducer],
    predecessors: dict[int, list[Transducer]],
    index_of: dict[int, int],
) -> dict[int, list[Transducer]]:
    successors: dict[int, list[Transducer]] = {id(node): [] for node in nodes}
    for node in nodes:
        for pred in predecessors.get(id(node), ()):  # corrupt entries skipped
            if id(pred) in successors:
                successors[id(pred)].append(node)
    return successors


def _check_reachability(
    network: Network,
    nodes: list[Transducer],
    predecessors: dict[int, list[Transducer]],
    successors: dict[int, list[Transducer]],
    out: AnalysisReport,
) -> None:
    # Forward reachability from the source.
    reached: set[int] = set()
    frontier: list[Transducer] = [network.source]
    while frontier:
        node = frontier.pop()
        if id(node) in reached:
            continue
        reached.add(id(node))
        frontier.extend(successors.get(id(node), ()))
    for node in nodes:
        if id(node) not in reached:
            out.add(
                NET006,
                f"{node.name}: unreachable from the input transducer; "
                "it can never see a stream event",
                node=node.name,
            )
    # Backward reachability from the sinks: every transducer's output
    # must matter to some output transducer.
    drains: set[int] = set()
    frontier = [node for node in nodes if isinstance(node, OutputTransducer)]
    while frontier:
        node = frontier.pop()
        if id(node) in drains:
            continue
        drains.add(id(node))
        frontier.extend(predecessors.get(id(node), ()))
    for node in nodes:
        if id(node) not in drains:
            out.add(
                NET005,
                f"{node.name}: no path to any output transducer; its "
                "output is discarded",
                node=node.name,
            )


# ----------------------------------------------------------------------
# split/join balance


def _ancestors_or_self(
    node: Transducer, predecessors: dict[int, list[Transducer]]
) -> set[int]:
    seen: set[int] = set()
    frontier = [node]
    while frontier:
        current = frontier.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        frontier.extend(predecessors.get(id(current), ()))
    return seen


def _check_split_join(
    nodes: list[Transducer],
    predecessors: dict[int, list[Transducer]],
    successors: dict[int, list[Transducer]],
    index_of: dict[int, int],
    out: AnalysisReport,
) -> None:
    for node in nodes:
        if isinstance(node, SplitTransducer):
            distinct = {id(s) for s in successors.get(id(node), ())}
            if len(distinct) < 2:
                out.add(
                    NET007,
                    f"{node.name}: split has {len(distinct)} distinct "
                    "successor(s); a split must fan out to two branches",
                    node=node.name,
                )
        if isinstance(node, JoinTransducer):
            preds = predecessors.get(id(node), ())
            if len(preds) != 2 or preds[0] is preds[1]:
                continue  # already reported by the shape/NET002 checks
            # The two branches must re-converge on a common fork: the
            # latest common ancestor of both inputs has to fan out to at
            # least two distinct successors (the Fig. 11 split — or the
            # fused star's implicit one).  A join whose inputs never
            # diverged merges a branch with itself, which double-counts
            # activations.
            common = _ancestors_or_self(preds[0], predecessors) & _ancestors_or_self(
                preds[1], predecessors
            )
            meet_index = max(
                (index_of[c] for c in common if c in index_of), default=None
            )
            meet = nodes[meet_index] if meet_index is not None else None
            if meet is None:
                out.add(
                    NET007,
                    f"{node.name}: join inputs share no common ancestor",
                    node=node.name,
                )
                continue
            fanout = {id(s) for s in successors.get(id(meet), ())}
            if len(fanout) < 2:
                out.add(
                    NET007,
                    f"{node.name}: join inputs converge at {meet.name}, "
                    "which never forks — the join merges a branch with "
                    "itself",
                    node=node.name,
                    meet=meet.name,
                )


# ----------------------------------------------------------------------
# qualifier wiring: VC / VF / VD pairing and variable scope


def _speculation_ids(nodes: list[Transducer]) -> set[str]:
    ids: set[str] = set()
    for node in nodes:
        if isinstance(node, VariableDeterminant):
            ids |= set(node.speculation_ids)
        qualifier = getattr(node, "qualifier", None)
        if qualifier is not None and not isinstance(
            node, (VariableCreator, VariableDeterminant)
        ):
            # preceding-axis transducers own a pseudo-qualifier id
            ids.add(qualifier)
    return ids


def _check_qualifier_wiring(
    nodes: list[Transducer],
    predecessors: dict[int, list[Transducer]],
    index_of: dict[int, int],
    out: AnalysisReport,
) -> None:
    creators: dict[str, list[Transducer]] = {}
    determinants: dict[str, list[Transducer]] = {}
    for node in nodes:
        if isinstance(node, VariableCreator):
            creators.setdefault(node.qualifier, []).append(node)
        elif isinstance(node, VariableDeterminant):
            determinants.setdefault(node.qualifier, []).append(node)
    speculation = _speculation_ids(nodes)

    for qualifier, created in sorted(creators.items()):
        if len(created) > 1:
            out.add(
                NET008,
                f"qualifier '{qualifier}' has {len(created)} variable "
                "creators; instances would be double-allocated",
                qualifier=qualifier,
            )
        if qualifier not in determinants:
            out.add(
                NET008,
                f"qualifier '{qualifier}' has a variable creator but no "
                "determinant; its variables can never be proven true",
                qualifier=qualifier,
                creator=created[0].name,
            )

    for qualifier, found in sorted(determinants.items()):
        if len(found) > 1:
            out.add(
                NET008,
                f"qualifier '{qualifier}' has {len(found)} determinants",
                qualifier=qualifier,
            )
        determinant = found[0]
        created = creators.get(qualifier)
        if created is None:
            if qualifier not in speculation:
                out.add(
                    NET008,
                    f"{determinant.name}: no variable creator exists for "
                    f"qualifier '{qualifier}'",
                    qualifier=qualifier,
                    node=determinant.name,
                )
        else:
            ancestors = _ancestors_or_self(determinant, predecessors)
            if id(created[0]) not in ancestors:
                out.add(
                    NET009,
                    f"{determinant.name}: variable creator "
                    f"{created[0].name} is not upstream of its "
                    "determinant — condition variables are determined "
                    "out of their creation scope",
                    qualifier=qualifier,
                    node=determinant.name,
                )
        # Fig. 11: the determinant consumes the condition branch through
        # the qualifier's own positive variable filter.
        preds = predecessors.get(id(determinant), ())
        fltr = preds[0] if len(preds) == 1 else None
        if not (
            isinstance(fltr, VariableFilter)
            and fltr.positive
            and qualifier in fltr.owned
        ):
            out.add(
                NET008,
                f"{determinant.name}: expected a positive variable "
                f"filter owning '{qualifier}' immediately upstream, "
                f"found {fltr.name if fltr is not None else 'nothing'}",
                qualifier=qualifier,
                node=determinant.name,
            )

    # Positive filters must only own qualifier ids that actually exist.
    for node in nodes:
        if isinstance(node, VariableFilter) and node.positive:
            unknown = sorted(
                owned
                for owned in node.owned
                if owned not in creators and owned not in speculation
            )
            if unknown:
                out.add(
                    NET009,
                    f"{node.name}: filter owns unknown qualifier id(s) "
                    f"{unknown}; no creator or speculation allocates them",
                    node=node.name,
                    unknown=unknown,
                )


# ----------------------------------------------------------------------
# condition-store identity and execution plan


def _check_store_discipline(
    network: Network, nodes: list[Transducer], out: AnalysisReport
) -> None:
    store = network.condition_store
    allocator = network.allocator
    for node in nodes:
        node_store = getattr(node, "_store", None)
        if node_store is not None and store is not None and node_store is not store:
            out.add(
                NET009,
                f"{node.name}: wired to a different condition store than "
                "the network's; contributions would never release "
                "candidates",
                node=node.name,
            )
        node_alloc = getattr(node, "_allocator", None)
        if (
            node_alloc is not None
            and allocator is not None
            and node_alloc is not allocator
        ):
            out.add(
                NET009,
                f"{node.name}: wired to a different variable allocator "
                "than the network's; variable uids would collide",
                node=node.name,
            )
    if store is None and any(
        getattr(node, "_store", None) is not None for node in nodes
    ):
        out.add(
            NET009,
            "network has no condition store but contains transducers "
            "that require one",
        )


def _check_plan(
    network: Network,
    nodes: list[Transducer],
    predecessors: dict[int, list[Transducer]],
    index_of: dict[int, int],
    out: AnalysisReport,
) -> None:
    names = [node.name for node in nodes]
    if len(set(names)) != len(names):
        duplicates = sorted({name for name in names if names.count(name) > 1})
        out.add(
            NET010,
            f"display names are not unique: {duplicates}; snapshots "
            "keyed by name would collide",
            duplicates=duplicates,
        )
    plan = network._plan
    if len(plan) != len(nodes) - 1:
        out.add(
            NET010,
            f"execution plan covers {len(plan)} node(s) for a network "
            f"of degree {len(nodes)}",
            plan=len(plan),
            degree=len(nodes),
        )
        return
    for row, node in zip(plan, nodes[1:]):
        planned, left, right = row
        if planned is not node:
            out.add(
                NET010,
                f"execution plan order diverges from node order at "
                f"{node.name}",
                node=node.name,
            )
            return
        preds = predecessors.get(id(node), ())
        want_left = index_of.get(id(preds[0])) if preds else None
        want_right = (
            index_of.get(id(preds[1])) if len(preds) == 2 else -1
        )
        if left != want_left or right != want_right:
            out.add(
                NET010,
                f"{node.name}: plan slots ({left}, {right}) disagree "
                f"with wiring ({want_left}, {want_right})",
                node=node.name,
            )
