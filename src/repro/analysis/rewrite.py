"""Certified semantics-preserving query rewriting (``RWR0xx``).

:mod:`repro.rpeq.rewrite` simplifies queries silently; this pass is the
*audited* optimizer on top of it: every applied rule is

* **diagnosed** — one ``RWR0xx`` diagnostic per rewrite step, carrying
  the rewritten site, the before/after query text and the rule that
  fired; and
* **certified** — a machine-checked :class:`EquivalenceCertificate`,
  discharged by differential evaluation of the before/after queries on
  generated witness streams (seeded random trees over the query's label
  vocabulary plus decoy labels, a depth chain, and a flat fan-out).  A
  step whose certificate fails to discharge aborts the whole rewrite
  (``RWR090``, an error) and the original query is returned unchanged —
  a rewrite can never silently change answers.

Beyond the structural rules mirrored from ``simplify`` (epsilon
elimination, closure collapse, dead union branches, vacuous qualifiers)
the engine applies three optimizer-grade rules:

* **qualifier pushdown** (``RWR007``): ``(E1.E2)[F] → E1.(E2[F])`` —
  sound because ``eval((E1.E2)[F], u)`` and ``eval(E1.(E2[F]), u)`` both
  select exactly the ``v ∈ eval(E2, w)``, ``w ∈ eval(E1, u)`` with
  ``eval(F, v) ≠ ∅``.  The condition sub-network shrinks and the
  qualifier-free spine prefix grows (feeding the planner's hybrid lane).
* **qualifier hoisting** (``RWR008``): ``(E1[F] | E2[F]) → (E1|E2)[F]``
  — one condition sub-network instead of two.
* **schema-dead branch elimination** (``RWR006``): with a DTD, a union
  branch that
  :meth:`~repro.dtd.analysis.SchemaAnalyzer.condition_satisfiable_somewhere`
  proves empty *from every context* is dropped.

:func:`factor_common_prefixes` additionally reports (``RWR010``) the
shared concatenation prefixes across a multi-query set — the paper's
shared-prefix SDI evaluation opportunity — without transforming anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from ..rpeq.ast import (
    Concat,
    Empty,
    Label,
    OptionalExpr,
    Plus,
    Qualifier,
    Rpeq,
    Star,
    Union,
)
from ..errors import ReproError
from ..rpeq.parser import parse
from ..rpeq.rewrite import always_nonempty
from ..rpeq.unparse import unparse
from .diagnostics import AnalysisReport, Severity, register_code
from .metrics import labels_used

if TYPE_CHECKING:
    from ..dtd.analysis import SchemaAnalyzer
    from ..dtd.model import Dtd
    from ..xmlstream.events import Event

RWR001 = register_code(
    "RWR001", Severity.INFO, "rewrite", "Vacuous epsilon eliminated"
)
RWR002 = register_code(
    "RWR002", Severity.INFO, "rewrite", "Redundant closure collapsed"
)
RWR003 = register_code(
    "RWR003", Severity.INFO, "rewrite", "Trivially-true qualifier removed"
)
RWR004 = register_code(
    "RWR004", Severity.INFO, "rewrite", "Duplicate qualifier removed"
)
RWR005 = register_code(
    "RWR005", Severity.INFO, "rewrite", "Dead union branch eliminated"
)
RWR006 = register_code(
    "RWR006", Severity.INFO, "rewrite", "Schema-dead union branch eliminated"
)
RWR007 = register_code(
    "RWR007", Severity.INFO, "rewrite", "Qualifier pushed down a concatenation"
)
RWR008 = register_code(
    "RWR008", Severity.INFO, "rewrite", "Common qualifier hoisted out of a union"
)
RWR010 = register_code(
    "RWR010", Severity.INFO, "rewrite", "Common prefix shared across query set"
)
RWR090 = register_code(
    "RWR090", Severity.ERROR, "rewrite", "Equivalence certificate failed"
)
RWR091 = register_code(
    "RWR091", Severity.WARNING, "rewrite", "Rewrite step budget exhausted"
)

#: Default seed for witness-stream generation (deterministic end to end).
WITNESS_SEED = 20030305


def _render_query(expr: Rpeq) -> str:
    """Concrete syntax for diagnostics, lenient about bare epsilon.

    ``Empty`` inside a larger expression has no concrete spelling (the
    parser never builds such trees, but hand-built ASTs can — that is
    precisely the ``RWR001`` input), so fall back to the AST repr rather
    than refuse to diagnose the rewrite that removes it.
    """
    try:
        return unparse(expr)
    except ReproError:
        return repr(expr)


# ----------------------------------------------------------------------
# spine helpers (shared with the planner)


def concat_spine(expr: Rpeq) -> list[Rpeq]:
    """Left-to-right top-level parts of a concatenation chain.

    Iterative, since Lemma V.1 workloads are chains thousands of steps
    long.  A non-``Concat`` expression is its own one-part spine.
    """
    if not isinstance(expr, Concat):
        return [expr]
    parts: list[Rpeq] = []
    stack: list[Rpeq] = [expr]
    while stack:
        current = stack.pop()
        if isinstance(current, Concat):
            stack.append(current.right)
            stack.append(current.left)
        else:
            parts.append(current)
    return parts


# ----------------------------------------------------------------------
# equivalence certificates


@dataclass
class EquivalenceCertificate:
    """Proof obligation for one rewrite step, discharged differentially.

    ``before``/``after`` are the whole-query texts around the step.  The
    obligation is discharged by evaluating both queries on every witness
    stream and comparing the full ``(position, label)`` match sequences;
    any divergence records the failing stream in :attr:`failure` and
    leaves :attr:`discharged` false.
    """

    rule: str
    before: str
    after: str
    streams: int = 0
    matches: int = 0
    discharged: bool = False
    failure: str | None = None

    def to_obj(self) -> dict[str, object]:
        """JSON-serializable form (embedded in the RWR diagnostic)."""
        return {
            "rule": self.rule,
            "before": self.before,
            "after": self.after,
            "streams": self.streams,
            "matches": self.matches,
            "discharged": self.discharged,
            "failure": self.failure,
        }


def witness_streams(
    before: Rpeq,
    after: Rpeq,
    *,
    seed: int = WITNESS_SEED,
    dtd: "Dtd | None" = None,
) -> list[list["Event"]]:
    """Generate the witness streams a certificate is discharged on.

    The label vocabulary is the union of both queries' labels plus decoy
    labels that appear in neither (so absorbed/eliminated branches are
    exercised as *non*-matches too).  Shapes: seeded random trees, one
    deep chain, one flat fan-out — the three regimes of the paper's
    datasets.

    With a ``dtd``, witnesses are sampled *valid* documents instead:
    under a schema, equivalence is rightly judged modulo that schema
    (the schema-dead rule ``RWR006`` is only sound on conforming
    documents).  A DTD the sampler cannot generate from falls back to
    the generic streams — schema-dependent rewrites then simply fail
    their certificates and are discarded, which is the safe direction.
    """
    if dtd is not None:
        try:
            from ..dtd.generate import generate_document

            return [
                list(generate_document(dtd, seed=seed + i, max_depth=6))
                for i in range(6)
            ]
        except Exception:
            pass
    from ..workloads.generators import deep_chain, random_tree, wide_flat

    labels = sorted(labels_used(before) | labels_used(after))
    if not labels:
        labels = ["a"]
    alphabet = tuple(labels) + ("zz", "yy")
    streams = [
        list(random_tree(seed + i, 48, max_depth=5, labels=alphabet))
        for i in range(4)
    ]
    streams.append(list(deep_chain(8, label=labels[0], leaf_label=labels[-1])))
    streams.append(list(wide_flat(10, label=labels[0], child_label=labels[-1])))
    return streams


def _match_signature(expr: Rpeq, events: list["Event"]) -> list[tuple[int, str]]:
    """Evaluate ``expr`` and return its ``(position, label)`` matches."""
    from ..core.engine import SpexEngine

    engine = SpexEngine(expr, collect_events=False, preflight=False)
    return [(match.position, match.label) for match in engine.run(iter(events))]


def discharge(
    certificate: EquivalenceCertificate,
    before: Rpeq,
    after: Rpeq,
    *,
    seed: int = WITNESS_SEED,
    dtd: "Dtd | None" = None,
) -> bool:
    """Differentially discharge one certificate; returns success."""
    streams = witness_streams(before, after, seed=seed, dtd=dtd)
    matches = 0
    for index, events in enumerate(streams):
        try:
            got_before = _match_signature(before, events)
            got_after = _match_signature(after, events)
        except Exception as exc:  # evaluation itself failed: not discharged
            certificate.failure = f"stream {index}: evaluation raised {exc!r}"
            certificate.streams = index
            return False
        if got_before != got_after:
            certificate.failure = (
                f"stream {index}: {len(got_before)} vs {len(got_after)} "
                f"match(es) diverged"
            )
            certificate.streams = index + 1
            return False
        matches += len(got_before)
    certificate.streams = len(streams)
    certificate.matches = matches
    certificate.discharged = True
    return True


# ----------------------------------------------------------------------
# the rules


def _match_rule(
    node: Rpeq, schema: "SchemaAnalyzer | None"
) -> tuple[Rpeq, str] | None:
    """Try every rule at one node; return ``(replacement, code)``."""
    if isinstance(node, Concat):
        if isinstance(node.left, Empty):
            return node.right, RWR001
        if isinstance(node.right, Empty):
            return node.left, RWR001
        left, right = node.left, node.right
        # Closure fusion over one label test — but never Plus.Plus, which
        # requires at least TWO steps (not expressible as one closure).
        if (
            isinstance(left, (Star, Plus))
            and isinstance(right, (Star, Plus))
            and left.label == right.label
            and not (isinstance(left, Plus) and isinstance(right, Plus))
        ):
            if isinstance(left, Star) and isinstance(right, Star):
                return Star(left.label), RWR002
            return Plus(left.label), RWR002
        return None
    if isinstance(node, Union):
        left, right = node.left, node.right
        if left == right:
            return left, RWR005
        if isinstance(left, Empty):
            return OptionalExpr(right), RWR001
        if isinstance(right, Empty):
            return OptionalExpr(left), RWR001
        # Wildcard absorption within the same step kind.
        for absorber, absorbed in ((left, right), (right, left)):
            if (
                isinstance(absorber, Label)
                and absorber.is_wildcard
                and isinstance(absorbed, Label)
            ):
                return absorber, RWR005
            if (
                isinstance(absorber, Plus)
                and absorber.label.is_wildcard
                and isinstance(absorbed, Plus)
            ):
                return absorber, RWR005
            if (
                isinstance(absorber, Star)
                and absorber.label.is_wildcard
                and isinstance(absorbed, Star)
            ):
                return absorber, RWR005
        # Common qualifier hoisting: (E1[F] | E2[F]) -> (E1|E2)[F].
        if (
            isinstance(left, Qualifier)
            and isinstance(right, Qualifier)
            and left.condition == right.condition
        ):
            return Qualifier(Union(left.base, right.base), left.condition), RWR008
        # Schema-dead branch: a branch satisfiable from *no* context
        # (including the document root) selects nothing anywhere, so the
        # union collapses to the other branch in any evaluation context.
        if schema is not None:
            if not schema.condition_satisfiable_somewhere(left):
                return right, RWR006
            if not schema.condition_satisfiable_somewhere(right):
                return left, RWR006
        return None
    if isinstance(node, OptionalExpr):
        inner = node.inner
        if isinstance(inner, (Empty, OptionalExpr, Star)):
            return inner, RWR002 if not isinstance(inner, Empty) else RWR001
        if isinstance(inner, Plus):
            return Star(inner.label), RWR002
        return None
    if isinstance(node, Qualifier):
        if always_nonempty(node.condition):
            return node.base, RWR003
        if (
            isinstance(node.base, Qualifier)
            and node.base.condition == node.condition
        ):
            return node.base, RWR004
        # Qualifier pushdown: (E1.E2)[F] -> E1.(E2[F]).
        if isinstance(node.base, Concat):
            base = node.base
            return (
                Concat(base.left, Qualifier(base.right, node.condition)),
                RWR007,
            )
        return None
    # Labels, closures, axis steps, Empty: nothing fires at a leaf.
    return None


def _rewrite_site(
    node: Rpeq, schema: "SchemaAnalyzer | None"
) -> tuple[Rpeq, str, Rpeq, Rpeq] | None:
    """One bottom-up, leftmost rewrite anywhere under ``node``.

    Returns ``(new_node, code, site_before, site_after)`` for the first
    site (children before the node itself) where a rule fires, or
    ``None`` at fixpoint.  Recursion depth is the AST height, same as
    ``repro.rpeq.rewrite.simplify``.
    """
    if isinstance(node, (Concat, Union)):
        hit = _rewrite_site(node.left, schema)
        if hit is not None:
            return type(node)(hit[0], node.right), hit[1], hit[2], hit[3]
        hit = _rewrite_site(node.right, schema)
        if hit is not None:
            return type(node)(node.left, hit[0]), hit[1], hit[2], hit[3]
    elif isinstance(node, OptionalExpr):
        hit = _rewrite_site(node.inner, schema)
        if hit is not None:
            return OptionalExpr(hit[0]), hit[1], hit[2], hit[3]
    elif isinstance(node, Qualifier):
        hit = _rewrite_site(node.base, schema)
        if hit is not None:
            return Qualifier(hit[0], node.condition), hit[1], hit[2], hit[3]
        hit = _rewrite_site(node.condition, schema)
        if hit is not None:
            return Qualifier(node.base, hit[0]), hit[1], hit[2], hit[3]
    local = _match_rule(node, schema)
    if local is not None:
        replacement, code = local
        return replacement, code, node, replacement
    return None


# ----------------------------------------------------------------------
# the engine


@dataclass(frozen=True)
class RewriteStep:
    """One applied rule: the site and the whole-query before/after."""

    rule: str
    site_before: str
    site_after: str
    query_before: str
    query_after: str

    def to_obj(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "site_before": self.site_before,
            "site_after": self.site_after,
            "query_before": self.query_before,
            "query_after": self.query_after,
        }


@dataclass(frozen=True)
class RewriteResult:
    """The outcome of :func:`rewrite_query` for one query."""

    original: Rpeq
    rewritten: Rpeq
    steps: tuple[RewriteStep, ...]
    certificates: tuple[EquivalenceCertificate, ...]

    @property
    def changed(self) -> bool:
        return self.rewritten != self.original

    @property
    def certified(self) -> bool:
        """Every step's equivalence certificate discharged."""
        return all(cert.discharged for cert in self.certificates)

    def to_obj(self) -> dict[str, object]:
        return {
            "original": _render_query(self.original),
            "rewritten": _render_query(self.rewritten),
            "changed": self.changed,
            "certified": self.certified,
            "steps": [step.to_obj() for step in self.steps],
            "certificates": [cert.to_obj() for cert in self.certificates],
        }


def rewrite_query(
    query: str | Rpeq,
    *,
    dtd: "Dtd | None" = None,
    report: AnalysisReport | None = None,
    certify: bool = True,
    max_steps: int = 200,
    seed: int = WITNESS_SEED,
) -> tuple[RewriteResult, AnalysisReport]:
    """Rewrite one query to the rules' fixpoint, certifying every step.

    Each applied rule emits its ``RWR0xx`` diagnostic into ``report``
    (created if omitted) with the step and its certificate attached.
    With ``certify=True`` (the default) every step is differentially
    checked on witness streams *before* it is committed; a failing
    certificate emits ``RWR090`` (an error) and the function returns the
    **original** query untouched — certification is the gate, not an
    afterthought.  ``certify=False`` leaves the obligations recorded but
    undischarged (for callers that batch-verify separately, e.g. the
    differential test suite).

    Returns the :class:`RewriteResult` and the report.
    """
    out = report if report is not None else AnalysisReport()
    expr = parse(query) if isinstance(query, str) else query
    schema: "SchemaAnalyzer | None" = None
    if dtd is not None:
        from ..dtd.analysis import SchemaAnalyzer

        schema = SchemaAnalyzer(dtd)

    current = expr
    steps: list[RewriteStep] = []
    certificates: list[EquivalenceCertificate] = []
    for _ in range(max_steps):
        hit = _rewrite_site(current, schema)
        if hit is None:
            break
        new_expr, code, site_before, site_after = hit
        step = RewriteStep(
            rule=code,
            site_before=_render_query(site_before),
            site_after=_render_query(site_after),
            query_before=_render_query(current),
            query_after=_render_query(new_expr),
        )
        certificate = EquivalenceCertificate(
            rule=code, before=step.query_before, after=step.query_after
        )
        if certify:
            discharge(certificate, current, new_expr, seed=seed, dtd=dtd)
        out.add(
            code,
            f"{step.site_before or 'ε'!r} → {step.site_after or 'ε'!r}",
            step=step.to_obj(),
            certificate=certificate.to_obj(),
        )
        certificates.append(certificate)
        if certify and not certificate.discharged:
            out.add(
                RWR090,
                f"rule {code} on {step.query_before!r} failed its "
                f"equivalence certificate ({certificate.failure}); "
                f"rewrite aborted, original query kept",
                certificate=certificate.to_obj(),
            )
            return (
                RewriteResult(expr, expr, tuple(steps), tuple(certificates)),
                out,
            )
        steps.append(step)
        current = new_expr
    if _rewrite_site(current, schema) is not None:
        out.add(
            RWR091,
            f"rewrite stopped after {max_steps} step(s) before reaching "
            f"the fixpoint",
            max_steps=max_steps,
        )
    return RewriteResult(expr, current, tuple(steps), tuple(certificates)), out


# ----------------------------------------------------------------------
# multi-query common-prefix factoring


@dataclass(frozen=True)
class PrefixGroup:
    """Queries sharing a leading concatenation prefix."""

    prefix: str
    steps: int
    members: tuple[str, ...]

    def to_obj(self) -> dict[str, object]:
        return {
            "prefix": self.prefix,
            "steps": self.steps,
            "members": list(self.members),
        }


def factor_common_prefixes(
    queries: Mapping[str, str | Rpeq],
    *,
    report: AnalysisReport | None = None,
) -> tuple[tuple[PrefixGroup, ...], AnalysisReport]:
    """Report the shared concatenation prefixes across a query set.

    Groups queries by their longest common spine prefix (≥ 1 part shared
    by ≥ 2 queries) and emits one ``RWR010`` diagnostic per group — the
    statically-detected sharing a shared-prefix SDI evaluator (paper
    Sec. VIII) would exploit.  Purely informational: no query changes.
    """
    out = report if report is not None else AnalysisReport()
    spines: dict[str, list[str]] = {}
    for query_id, query in queries.items():
        expr = parse(query) if isinstance(query, str) else query
        spines[query_id] = [_render_query(part) for part in concat_spine(expr)]

    buckets: dict[str, list[str]] = {}
    for query_id, spine in sorted(spines.items()):
        if spine and spine[0]:
            buckets.setdefault(spine[0], []).append(query_id)

    groups: list[PrefixGroup] = []
    for first, members in sorted(buckets.items()):
        if len(members) < 2:
            continue
        common = list(spines[members[0]])
        for query_id in members[1:]:
            spine = spines[query_id]
            keep = 0
            for a, b in zip(common, spine):
                if a != b:
                    break
                keep += 1
            common = common[:keep]
        if not common:
            continue
        group = PrefixGroup(
            prefix=".".join(common), steps=len(common), members=tuple(members)
        )
        groups.append(group)
        out.add(
            RWR010,
            f"{len(group.members)} queries share the prefix "
            f"{group.prefix!r} ({group.steps} step(s))",
            **group.to_obj(),
        )
    ordered = tuple(sorted(groups, key=lambda g: (-len(g.members), g.prefix)))
    return ordered, out
