"""Structural metrics of rpeq queries.

The complexity results of Sec. V are parameterized by properties of the
query: its length ``n``, the number of qualifiers, the number of closure
steps, and in particular the number of *wildcard closure steps carrying
qualifiers downstream* — the configuration that can make condition
formulas grow to ``O(d^n)``.  :func:`analyze` computes all of these; the
benchmark harness uses them to label experiments, the linter uses them
to decide which performance notes apply, and the cost certifier uses
them to pick the right formula-size bound.

This module is the canonical home of these metrics; the old
``repro.rpeq.analysis`` alias has been removed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rpeq.ast import (
    Following,
    Label,
    OptionalExpr,
    Plus,
    Preceding,
    Qualifier,
    Rpeq,
    Star,
    Union,
)


@dataclass(frozen=True)
class QueryProfile:
    """Structural metrics of an rpeq query.

    Attributes:
        length: total number of AST nodes (the paper's ``n`` up to a
            constant factor; network degree is linear in this).
        steps: number of label/closure steps.
        qualifiers: number of qualifier brackets.
        closures: number of ``+``/``*`` steps.
        wildcard_closures: number of closure steps over the wildcard.
        unions: number of ``|`` operators.
        optionals: number of ``?`` operators.
        max_qualifier_nesting: deepest nesting of qualifiers inside
            qualifiers (0 when there are none).
        has_closure_under_qualifier: whether any qualifier condition
            contains a closure step — relevant to formula-size growth.
    """

    length: int
    steps: int
    qualifiers: int
    closures: int
    wildcard_closures: int
    unions: int
    optionals: int
    max_qualifier_nesting: int
    has_closure_under_qualifier: bool

    @property
    def fragment(self) -> str:
        """The paper's fragment name this query falls into.

        ``rpeq*`` — no qualifiers; ``rpeq[]`` — qualifiers but no closure;
        ``rpeq*[]`` — both (the formula-size worst case).
        """
        if self.qualifiers == 0:
            return "rpeq*"
        if self.closures == 0:
            return "rpeq[]"
        return "rpeq*[]"


def analyze(expr: Rpeq) -> QueryProfile:
    """Compute the :class:`QueryProfile` of a query AST."""
    length = 0
    steps = 0
    qualifiers = 0
    closures = 0
    wildcard_closures = 0
    unions = 0
    optionals = 0
    closure_under_qualifier = False

    max_nesting = 0

    # Iterative walk tracking (a) whether we are inside a qualifier
    # condition and (b) the qualifier-nesting level — iterative so that
    # arbitrarily long queries (Lemma V.1 workloads reach thousands of
    # steps) never exhaust the interpreter stack.
    work: list[tuple[Rpeq, bool, int]] = [(expr, False, 0)]
    while work:
        node, inside, nesting = work.pop()
        length += 1
        if isinstance(node, Label):
            steps += 1
            continue
        if isinstance(node, (Following, Preceding)):
            steps += 1
            length += 1
            continue
        if isinstance(node, (Plus, Star)):
            steps += 1
            closures += 1
            if node.label.is_wildcard:
                wildcard_closures += 1
            if inside:
                closure_under_qualifier = True
            # The label is counted as part of this step.
            length += 1
            continue
        if isinstance(node, Qualifier):
            qualifiers += 1
            if nesting + 1 > max_nesting:
                max_nesting = nesting + 1
            work.append((node.condition, True, nesting + 1))
            work.append((node.base, inside, nesting))
            continue
        if isinstance(node, Union):
            unions += 1
        elif isinstance(node, OptionalExpr):
            optionals += 1
        work.extend((child, inside, nesting) for child in node.children())

    return QueryProfile(
        length=length,
        steps=steps,
        qualifiers=qualifiers,
        closures=closures,
        wildcard_closures=wildcard_closures,
        unions=unions,
        optionals=optionals,
        max_qualifier_nesting=max_nesting,
        has_closure_under_qualifier=closure_under_qualifier,
    )


def labels_used(expr: Rpeq) -> set[str]:
    """All concrete labels mentioned by a query (excluding the wildcard)."""
    return {
        node.name
        for node in expr.walk()
        if isinstance(node, Label) and not node.is_wildcard
    }


def uses_wildcard(expr: Rpeq) -> bool:
    """Whether the query contains any wildcard step."""
    return any(
        isinstance(node, Label) and node.is_wildcard for node in expr.walk()
    )
