"""Snapshot-coverage meta-check: does checkpoint/resume capture all state?

The checkpoint protocol (PR 2) relies on every transducer's
``snapshot()``/``restore()`` round-tripping *all* of its mutable
evaluation state.  A new attribute added to a transducer but forgotten
in ``_snapshot_extra`` silently breaks resume: the restored network
diverges from the original only on inputs that exercise the missing
state.

Rather than trying to enumerate "mutable attributes" by static
inspection (slots, dataclasses and service references make that guess
unreliable), this pass finds them *behaviorally*: it compiles three
identical networks, drives one with real events, and diffs instance
state — anything that changed relative to a fresh network was mutated by
evaluation and must therefore survive a snapshot/restore round-trip
(``NET020``) and be reset when restoring a pre-run snapshot into the
dirty network (``NET021``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import fields, is_dataclass
from typing import Callable, Iterable

from ..conditions.formula import Formula, formula_to_obj
from ..conditions.store import ConditionStore, VariableAllocator
from ..core.network import Network
from ..core.optimize import OptimizationFlags
from ..core.transducer import Transducer
from ..limits import ResourceLimits
from ..rpeq.ast import Rpeq
from ..rpeq.parser import parse
from ..xmlstream.events import Event
from .diagnostics import AnalysisReport, Severity, register_code

NET020 = register_code(
    "NET020", Severity.ERROR, "snapshot", "State mutated but not snapshotted"
)
NET021 = register_code(
    "NET021", Severity.ERROR, "snapshot", "Restore leaves stale state behind"
)

#: sentinel for attributes the diff ignores (service references)
_SKIP = object()


def _normalize(value: object, _path: tuple[int, ...] = ()) -> object:
    """Reduce a runtime value to a comparable, deterministic structure.

    Service references (stores, allocators, transducers, callables) are
    excluded — they are wiring, not evaluation state, and are compared
    by the network verifier instead.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, (ConditionStore, VariableAllocator, Transducer)):
        return _SKIP
    if callable(value):
        return _SKIP
    if id(value) in _path:
        return "<cycle>"
    path = _path + (id(value),)
    if isinstance(value, Formula):
        return ("formula", formula_to_obj(value))
    if is_dataclass(value) and not isinstance(value, type):
        normalized = {
            f.name: _normalize(getattr(value, f.name), path) for f in fields(value)
        }
        return (
            type(value).__name__,
            {k: v for k, v in normalized.items() if v is not _SKIP},
        )
    if isinstance(value, dict):
        items = [
            (_normalize(k, path), _normalize(v, path)) for k, v in value.items()
        ]
        items = [(k, v) for k, v in items if k is not _SKIP and v is not _SKIP]
        return ("dict", sorted(items, key=repr))
    if isinstance(value, (set, frozenset)):
        members = [_normalize(member, path) for member in value]
        return ("set", sorted((m for m in members if m is not _SKIP), key=repr))
    if isinstance(value, (list, tuple, deque)):
        members = [_normalize(member, path) for member in value]
        return [m for m in members if m is not _SKIP]
    return repr(value)


def _state_of(node: Transducer) -> dict[str, object]:
    """Normalized instance state of one transducer, keyed by attribute."""
    state: dict[str, object] = {}
    for attr, value in vars(node).items():
        if attr == "name":
            continue
        normalized = _normalize(value)
        if normalized is not _SKIP:
            state[attr] = normalized
    return state


def check_snapshot_coverage(
    query: str | Rpeq | None,
    events: Iterable[Event],
    *,
    optimize: "bool | OptimizationFlags" = True,
    collect_events: bool = True,
    limits: ResourceLimits | None = None,
    network_factory: Callable[[], Network] | None = None,
    report: AnalysisReport | None = None,
) -> AnalysisReport:
    """Verify snapshot coverage of every transducer compiled for ``query``.

    Drives one network with ``events`` (normally a complete document so
    every transducer kind sees traffic), then checks that each attribute
    evaluation mutated (a) reappears when the snapshot is restored into a
    fresh network and (b) is rolled back when the pre-run snapshot is
    restored into the dirty network.  ``network_factory`` substitutes a
    custom deterministic builder (used by the meta-check's own tests to
    plant a deliberately leaky transducer).
    """

    def build() -> Network:
        if network_factory is not None:
            return network_factory()
        expr = parse(query) if isinstance(query, str) else query
        if expr is None:
            raise ValueError("check_snapshot_coverage needs a query or factory")
        # Deferred: this module loads during package initialization,
        # potentially while the compiler module itself is mid-import.
        from ..core.compiler import compile_network

        network, _store = compile_network(
            expr, collect_events=collect_events, optimize=optimize, limits=limits
        )
        return network

    out = report if report is not None else AnalysisReport()
    run_net = build()
    fresh_net = build()
    target_net = build()

    pre_snapshot = run_net.snapshot()
    for event in events:
        run_net.process_event(event)
    post_snapshot = run_net.snapshot()
    target_net.restore(post_snapshot)

    fresh_by_name = {node.name: node for node in fresh_net.nodes}
    target_by_name = {node.name: node for node in target_net.nodes}
    for node in run_net.nodes:
        fresh_node = fresh_by_name.get(node.name)
        target_node = target_by_name.get(node.name)
        if fresh_node is None or target_node is None:
            # Non-deterministic factory; the verifier reports naming
            # problems, nothing to diff here.
            continue
        dirty = _state_of(node)
        fresh = _state_of(fresh_node)
        restored = _state_of(target_node)
        for attr in sorted(dirty):
            if dirty[attr] == fresh.get(attr):
                continue  # not mutated by this run
            if restored.get(attr) != dirty[attr]:
                out.add(
                    NET020,
                    f"{node.name}.{attr} was mutated during evaluation "
                    "but a snapshot/restore round-trip does not "
                    "reproduce it — resume would silently diverge",
                    node=node.name,
                    attribute=attr,
                )

    # Restoring the pre-run snapshot must fully roll the dirty network
    # back to fresh state — leftovers mean restore() overwrites less
    # than evaluation mutates.
    run_net.restore(pre_snapshot)
    for node in run_net.nodes:
        fresh_node = fresh_by_name.get(node.name)
        if fresh_node is None:
            continue
        rolled_back = _state_of(node)
        fresh = _state_of(fresh_node)
        for attr in sorted(rolled_back):
            if rolled_back[attr] != fresh.get(attr):
                out.add(
                    NET021,
                    f"{node.name}.{attr} still holds post-run state "
                    "after restoring the pre-run snapshot — restore() "
                    "does not reset it",
                    node=node.name,
                    attribute=attr,
                )
    return out
