"""Execution-lane planning and refined σ̂ bounds (``PLAN0xx``).

The evaluation cost of an rpeq is governed by its *shape* (paper
Sec. V): qualifier-free queries never create condition variables, so
their networks carry only unconditional candidates — no formulas, no
``σ``-sized cells.  The planner makes that knowledge a first-class,
machine-readable artifact:

* **Lane classification.**  Every query lands in exactly one lane:

  - ``dfa`` (``PLAN001``) — qualifier-free, no axis steps: eligible for
    a lazy-DFA fast lane with no condition machinery at all.
  - ``hybrid`` (``PLAN002``) — a *selective* qualifier-free spine prefix
    (at least one required concrete label step) in front of the first
    qualifier: the prefix is DFA-runnable, the transducer network is
    only needed from the first qualifier on.
  - ``network`` (``PLAN003``) — everything else (axis steps, or
    qualifiers guarding an unselective spine) needs the full network.

* **Refined σ̂.**  The admission controller and the shard partitioner
  consumed the worst-case ``COST`` bound; the planner refines it — a
  ``dfa``-lane query is pinned to ``σ̂ = 1`` (no formulas exist to grow)
  and every lane takes the minimum with the worst-case bound, so
  **refined σ̂ ≤ worst-case σ̂ for every query** by construction
  (``PLAN004`` reports a strict improvement).

* **Certified rewriting first** (opt-in): with ``rewrite=True`` the
  query runs through :func:`repro.analysis.rewrite.rewrite_query` and
  the plan is computed for the rewritten form — only if every rewrite
  step's equivalence certificate discharged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from ..limits import ResourceLimits
from ..rpeq.ast import (
    Concat,
    Following,
    Label,
    Plus,
    Preceding,
    Qualifier,
    Rpeq,
    Union,
)
from ..rpeq.parser import parse
from ..rpeq.unparse import unparse
from .cost import certify_cost
from .diagnostics import AnalysisReport, Severity, register_code
from .metrics import analyze
from .rewrite import concat_spine, factor_common_prefixes, rewrite_query

if TYPE_CHECKING:
    from ..dtd.model import Dtd

PLAN000 = register_code("PLAN000", Severity.INFO, "planner", "Query plan")
PLAN001 = register_code(
    "PLAN001", Severity.INFO, "planner", "Lazy-DFA fast lane eligible"
)
PLAN002 = register_code(
    "PLAN002", Severity.INFO, "planner",
    "Hybrid lane: qualifier-free prefix + network suffix",
)
PLAN003 = register_code(
    "PLAN003", Severity.INFO, "planner", "Full transducer network required"
)
PLAN004 = register_code(
    "PLAN004", Severity.INFO, "planner", "Planner refined the σ̂ bound"
)
PLAN005 = register_code(
    "PLAN005", Severity.WARNING, "planner",
    "Fast-lane demotion: query falls back to the transducer network",
)

#: The execution lanes, in increasing machinery order.
LANE_DFA = "dfa"
LANE_HYBRID = "hybrid"
LANE_NETWORK = "network"
LANES = (LANE_DFA, LANE_HYBRID, LANE_NETWORK)

_LANE_CODES = {LANE_DFA: PLAN001, LANE_HYBRID: PLAN002, LANE_NETWORK: PLAN003}


@dataclass(frozen=True)
class QueryPlan:
    """The static execution plan of one query.

    ``prefix`` is the qualifier-free spine prefix a DFA could run
    (``dfa`` lane: the whole query); it includes the qualifier-free base
    of the first qualified step, where the network takes over.
    ``sigma_refined`` is the planner's bound, always ``≤``
    ``sigma_worst`` (``None`` means uncertifiable and counts as ∞).
    """

    query: str
    lane: str
    prefix: str | None
    prefix_steps: int
    qualifiers: int
    axis_steps: int
    sigma_worst: int | None
    sigma_refined: int | None
    rewrite_steps: int = 0

    def to_obj(self) -> dict[str, object]:
        """JSON-serializable form (ServingReport / bench / CLI codec)."""
        return {
            "query": self.query,
            "lane": self.lane,
            "prefix": self.prefix,
            "prefix_steps": self.prefix_steps,
            "qualifiers": self.qualifiers,
            "axis_steps": self.axis_steps,
            "sigma_worst": self.sigma_worst,
            "sigma_refined": self.sigma_refined,
            "rewrite_steps": self.rewrite_steps,
        }

    @classmethod
    def from_obj(cls, obj: Mapping[str, object]) -> "QueryPlan":
        """Inverse of :meth:`to_obj`."""
        def _opt(name: str) -> int | None:
            value = obj[name]
            return None if value is None else int(value)  # type: ignore[call-overload]

        return cls(
            query=str(obj["query"]),
            lane=str(obj["lane"]),
            prefix=None if obj["prefix"] is None else str(obj["prefix"]),
            prefix_steps=int(obj["prefix_steps"]),  # type: ignore[call-overload]
            qualifiers=int(obj["qualifiers"]),  # type: ignore[call-overload]
            axis_steps=int(obj["axis_steps"]),  # type: ignore[call-overload]
            sigma_worst=_opt("sigma_worst"),
            sigma_refined=_opt("sigma_refined"),
            rewrite_steps=int(obj.get("rewrite_steps", 0)),  # type: ignore[call-overload]
        )


def _pure(part: Rpeq) -> bool:
    """No qualifiers and no axis steps anywhere under ``part``."""
    return not any(
        isinstance(node, (Qualifier, Following, Preceding)) for node in part.walk()
    )


def _required_concrete(part: Rpeq) -> bool:
    """Whether ``part`` forces at least one concrete (non-wildcard) step.

    ``a`` and ``a+`` force a concrete step; ``a*``, ``E?`` and ``ε`` can
    match the empty path, so they force nothing; a union forces one only
    if **both** branches do.
    """
    if isinstance(part, Label):
        return not part.is_wildcard
    if isinstance(part, Plus):
        return not part.label.is_wildcard
    if isinstance(part, Concat):
        return _required_concrete(part.left) or _required_concrete(part.right)
    if isinstance(part, Union):
        return _required_concrete(part.left) and _required_concrete(part.right)
    # Star / OptionalExpr / Empty may match ε; axis steps and qualifiers
    # never appear here (prefix parts are _pure).
    return False


def _spine_prefix(parts: list[Rpeq]) -> list[Rpeq]:
    """The qualifier-free prefix of a spine, crossing into the base of
    the first qualified part (where the network would take over)."""
    prefix: list[Rpeq] = []
    for part in parts:
        if _pure(part):
            prefix.append(part)
            continue
        if isinstance(part, Qualifier):
            base = part.base
            while isinstance(base, Qualifier):
                base = base.base
            if _pure(base):
                prefix.append(base)
        break
    return prefix


def _min_bound(a: int | None, b: int | None) -> int | None:
    """Minimum of two σ̂ bounds where ``None`` means unbounded (∞)."""
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def plan_query(
    query: str | Rpeq,
    *,
    limits: ResourceLimits | None = None,
    dtd: "Dtd | None" = None,
    rewrite: bool = False,
    report: AnalysisReport | None = None,
) -> tuple[QueryPlan, AnalysisReport]:
    """Classify one query into an execution lane and refine its σ̂ bound.

    With ``rewrite=True`` the certified rewrite engine runs first (its
    ``RWR0xx`` diagnostics land in ``report``) and the plan describes
    the rewritten query; an uncertified rewrite is discarded and the
    original query is planned instead.  ``PLAN000`` always carries the
    full plan object; the lane-specific ``PLAN001``–``PLAN003`` and the
    strict-improvement ``PLAN004`` ride along.
    """
    out = report if report is not None else AnalysisReport()
    expr = parse(query) if isinstance(query, str) else query

    worst_certificate, _ = certify_cost(expr, limits=limits, dtd=dtd)
    sigma_worst = worst_certificate.sigma_bound

    planned = expr
    rewrite_steps = 0
    if rewrite:
        result, _ = rewrite_query(expr, dtd=dtd, report=out)
        if result.certified and result.changed:
            planned = result.rewritten
            rewrite_steps = len(result.steps)

    profile = analyze(planned)
    axis_steps = sum(
        1 for node in planned.walk() if isinstance(node, (Following, Preceding))
    )
    parts = concat_spine(planned)
    if profile.qualifiers == 0 and axis_steps == 0:
        lane = LANE_DFA
        prefix_parts = parts
    else:
        prefix_parts = _spine_prefix(parts)
        lane = (
            LANE_HYBRID
            if _required_concrete_any(prefix_parts)
            else LANE_NETWORK
        )

    if lane == LANE_DFA:
        # No qualifiers → no condition variables → every candidate is
        # unconditional: the formula-size bound collapses to 1.
        refined = 1
    else:
        planned_certificate, _ = certify_cost(planned, limits=limits, dtd=dtd)
        refined = planned_certificate.sigma_bound
    sigma_refined = _min_bound(refined, sigma_worst)

    prefix = (
        ".".join(unparse(part) for part in prefix_parts) if prefix_parts else None
    )
    plan = QueryPlan(
        query=unparse(planned),
        lane=lane,
        prefix=prefix,
        prefix_steps=len(prefix_parts),
        qualifiers=profile.qualifiers,
        axis_steps=axis_steps,
        sigma_worst=sigma_worst,
        sigma_refined=sigma_refined,
        rewrite_steps=rewrite_steps,
    )

    worst_text = "∞" if sigma_worst is None else str(sigma_worst)
    refined_text = "∞" if sigma_refined is None else str(sigma_refined)
    out.add(
        PLAN000,
        f"lane={lane} σ̂={refined_text} (worst {worst_text}) "
        f"prefix={prefix or 'ε'!r}",
        plan=plan.to_obj(),
    )
    lane_messages = {
        LANE_DFA: "qualifier-free: lazy-DFA eligible, no condition machinery",
        LANE_HYBRID: f"DFA-runnable prefix {prefix!r} "
        f"({len(prefix_parts)} step(s)) before the first qualifier",
        LANE_NETWORK: "full transducer network required",
    }
    out.add(_LANE_CODES[lane], lane_messages[lane], lane=lane)
    if sigma_refined is not None and (
        sigma_worst is None or sigma_refined < sigma_worst
    ):
        out.add(
            PLAN004,
            f"refined σ̂={sigma_refined} tightens the worst-case bound "
            f"{worst_text}",
            sigma_refined=sigma_refined,
            sigma_worst=sigma_worst,
        )
    return plan, out


def _required_concrete_any(parts: list[Rpeq]) -> bool:
    return any(_required_concrete(part) for part in parts)


def plan_queries(
    queries: Mapping[str, str | Rpeq],
    *,
    limits: ResourceLimits | None = None,
    dtd: "Dtd | None" = None,
    rewrite: bool = False,
    report: AnalysisReport | None = None,
) -> tuple[dict[str, QueryPlan], AnalysisReport]:
    """Plan a whole query set and report its shared prefixes.

    Returns per-query plans plus one shared report: all ``PLAN0xx``
    (and, with ``rewrite=True``, ``RWR0xx``) diagnostics, and the
    ``RWR010`` common-prefix groups across the set.
    """
    out = report if report is not None else AnalysisReport()
    plans: dict[str, QueryPlan] = {}
    for query_id, query in queries.items():
        plans[query_id], _ = plan_query(
            query, limits=limits, dtd=dtd, rewrite=rewrite, report=out
        )
    factor_common_prefixes(queries, report=out)
    return plans, out


def lane_counts(plans: Mapping[str, QueryPlan]) -> dict[str, int]:
    """How many plans landed in each lane (all lanes always present)."""
    counts = {lane: 0 for lane in LANES}
    for plan in plans.values():
        counts[plan.lane] += 1
    return counts


def check_lane_coverage(payload: Mapping[str, object]) -> list[str]:
    """Validate an ``analyze --plan --json`` payload's lane invariants.

    This is the gate CI used to re-implement inline against the JSON:
    every lane of :data:`LANES` must be exercised by the corpus, every
    refined σ̂ must stay under its worst-case bound, and every rewrite
    certificate present in the diagnostics must have discharged.
    Returns a list of human-readable problems — empty means the payload
    passes (``spex analyze --plan --check-lanes`` exits nonzero
    otherwise, so local runs and CI share one checker).
    """
    problems: list[str] = []
    lanes: set[str] = set()
    for name, entry in payload.items():
        if not isinstance(entry, Mapping):
            problems.append(f"{name}: malformed payload entry")
            continue
        plan = entry.get("plan")
        if not isinstance(plan, Mapping):
            problems.append(f"{name}: entry carries no plan")
            continue
        lane = str(plan.get("lane"))
        if lane not in LANES:
            problems.append(f"{name}: unknown lane {lane!r}")
        lanes.add(lane)
        worst = plan.get("sigma_worst")
        refined = plan.get("sigma_refined")
        if worst is not None:
            if refined is None:
                problems.append(
                    f"{name}: refined σ̂ is unbounded but the worst case "
                    f"is {worst}"
                )
            elif int(refined) > int(worst):  # type: ignore[call-overload]
                problems.append(
                    f"{name}: refined σ̂ {refined} exceeds the worst-case "
                    f"bound {worst}"
                )
        analysis = entry.get("analysis")
        diagnostics = (
            analysis.get("diagnostics", [])
            if isinstance(analysis, Mapping)
            else []
        )
        for diag in diagnostics:
            if not isinstance(diag, Mapping):
                continue
            details = diag.get("details")
            if not isinstance(details, Mapping):
                continue
            certificate = details.get("certificate")
            if isinstance(certificate, Mapping) and not certificate.get(
                "discharged"
            ):
                problems.append(
                    f"{name}: rewrite certificate failed to discharge "
                    f"({diag.get('code')})"
                )
    missing = set(LANES) - lanes
    if missing:
        problems.append(
            f"corpus does not exercise every lane: missing {sorted(missing)}"
        )
    return problems
