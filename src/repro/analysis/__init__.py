"""Static analysis of rpeq queries and compiled SPEX networks.

A multi-pass analyzer with a shared diagnostics framework (stable codes,
severities, source spans, text + JSON output — see ``docs/analysis.md``
for the full catalogue):

* :func:`lint_query` — the rpeq linter (``RPQ0xx``): trivially-true or
  contradictory qualifiers, redundant closures, dead union branches,
  and DTD-based satisfiability.
* :func:`verify_network` — structural invariants of the compiled
  transducer DAG (``NET001``–``NET010``): acyclicity, single
  input/output, split/join and creator/filter/determinant pairing,
  condition-variable scope, reachability.
* :func:`certify_cost` — the paper's ``d·σ`` worst-case memory bound,
  cross-checked against :class:`~repro.limits.ResourceLimits`
  (``COST0xx``).
* :func:`check_snapshot_coverage` — behavioral meta-check that
  checkpoint snapshots capture all mutated transducer state
  (``NET020``/``NET021``).
* :func:`preflight` / :func:`ensure_preflight` — the chain the engines
  run before consuming a stream (opt-out via ``preflight=False``).
* :func:`rewrite_query` / :func:`factor_common_prefixes` — the certified
  rewrite engine (``RWR0xx``): every applied rule emits a diagnostic and
  a machine-checked equivalence certificate, discharged by differential
  evaluation on witness streams.
* :func:`plan_query` / :func:`plan_queries` — execution-lane planning
  (``PLAN0xx``): lazy-DFA / hybrid / full-network classification with a
  refined per-query ``σ̂`` bound (always ≤ the worst-case COST bound).
"""

from .cost import CostCertificate, certify_cost
from .diagnostics import (
    CODES,
    AnalysisReport,
    CodeInfo,
    Diagnostic,
    Severity,
    Span,
    all_codes,
    register_code,
)
from .lint import lint_query
from .metrics import QueryProfile, analyze, labels_used, uses_wildcard
from .netcheck import verify_network
from .planner import (
    LANES,
    QueryPlan,
    check_lane_coverage,
    lane_counts,
    plan_queries,
    plan_query,
)
from .preflight import ensure_preflight, preflight
from .rewrite import (
    EquivalenceCertificate,
    PrefixGroup,
    RewriteResult,
    RewriteStep,
    factor_common_prefixes,
    rewrite_query,
)
from .snapshot_check import check_snapshot_coverage

__all__ = [
    "AnalysisReport",
    "CODES",
    "CodeInfo",
    "CostCertificate",
    "Diagnostic",
    "EquivalenceCertificate",
    "LANES",
    "PrefixGroup",
    "QueryPlan",
    "QueryProfile",
    "RewriteResult",
    "RewriteStep",
    "Severity",
    "Span",
    "all_codes",
    "analyze",
    "certify_cost",
    "check_lane_coverage",
    "check_snapshot_coverage",
    "ensure_preflight",
    "factor_common_prefixes",
    "labels_used",
    "lane_counts",
    "lint_query",
    "plan_queries",
    "plan_query",
    "preflight",
    "register_code",
    "rewrite_query",
    "uses_wildcard",
    "verify_network",
]
