"""Static analysis of rpeq queries and compiled SPEX networks.

A multi-pass analyzer with a shared diagnostics framework (stable codes,
severities, source spans, text + JSON output — see ``docs/analysis.md``
for the full catalogue):

* :func:`lint_query` — the rpeq linter (``RPQ0xx``): trivially-true or
  contradictory qualifiers, redundant closures, dead union branches,
  and DTD-based satisfiability.
* :func:`verify_network` — structural invariants of the compiled
  transducer DAG (``NET001``–``NET010``): acyclicity, single
  input/output, split/join and creator/filter/determinant pairing,
  condition-variable scope, reachability.
* :func:`certify_cost` — the paper's ``d·σ`` worst-case memory bound,
  cross-checked against :class:`~repro.limits.ResourceLimits`
  (``COST0xx``).
* :func:`check_snapshot_coverage` — behavioral meta-check that
  checkpoint snapshots capture all mutated transducer state
  (``NET020``/``NET021``).
* :func:`preflight` / :func:`ensure_preflight` — the chain the engines
  run before consuming a stream (opt-out via ``preflight=False``).

The structural query metrics that historically lived in
``repro.rpeq.analysis`` are now :mod:`repro.analysis.metrics`.
"""

from .cost import CostCertificate, certify_cost
from .diagnostics import (
    CODES,
    AnalysisReport,
    CodeInfo,
    Diagnostic,
    Severity,
    Span,
    all_codes,
    register_code,
)
from .lint import lint_query
from .metrics import QueryProfile, analyze, labels_used, uses_wildcard
from .netcheck import verify_network
from .preflight import ensure_preflight, preflight
from .snapshot_check import check_snapshot_coverage

__all__ = [
    "AnalysisReport",
    "CODES",
    "CodeInfo",
    "CostCertificate",
    "Diagnostic",
    "QueryProfile",
    "Severity",
    "Span",
    "all_codes",
    "analyze",
    "certify_cost",
    "check_snapshot_coverage",
    "ensure_preflight",
    "labels_used",
    "lint_query",
    "preflight",
    "register_code",
    "uses_wildcard",
    "verify_network",
]
