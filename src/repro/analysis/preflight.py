"""Pre-flight analysis: everything checkable before a stream is consumed.

:func:`preflight` chains the three static passes — lint the query,
compile a probe network and verify its structure, certify the ``d·σ``
memory bound against the configured limits — into one report.  The
engines run it at construction (opt-out via ``preflight=False``) and
raise :class:`~repro.errors.StaticAnalysisError` on any error-severity
finding, so a query that cannot work never starts consuming events.

The probe network compiled here is thrown away: networks carry
evaluation state, so the engine compiles a fresh one per run anyway
(compilation is linear in the query, Lemma V.1 — the probe is cheap).
"""

from __future__ import annotations

from ..core.optimize import OptimizationFlags
from ..dtd.model import Dtd
from ..errors import StaticAnalysisError
from ..limits import ResourceLimits
from ..rpeq.ast import Rpeq
from ..rpeq.parser import parse
from .diagnostics import AnalysisReport
from .cost import certify_cost
from .lint import lint_query
from .netcheck import verify_network


def preflight(
    query: str | Rpeq,
    *,
    limits: ResourceLimits | None = None,
    dtd: Dtd | None = None,
    optimize: "bool | OptimizationFlags" = True,
    collect_events: bool = True,
) -> AnalysisReport:
    """Run all static passes over one query; returns the merged report."""
    report = AnalysisReport()
    if isinstance(query, str):
        expr = parse(query)
        lint_query(query, dtd=dtd, report=report)
    else:
        expr = query
        lint_query(expr, dtd=dtd, report=report)

    # Import here, not at module top: the compiler pulls in the full
    # transducer zoo, and this module is imported by the engine during
    # package initialization.
    from ..core.compiler import compile_network

    network, _store = compile_network(
        expr, collect_events=collect_events, optimize=optimize, limits=limits
    )
    verify_network(network, report=report)
    certify_cost(
        expr,
        limits=limits,
        dtd=dtd,
        degree=network.degree,
        collect_events=collect_events,
        report=report,
    )
    return report


def ensure_preflight(
    query: str | Rpeq,
    *,
    limits: ResourceLimits | None = None,
    dtd: Dtd | None = None,
    optimize: "bool | OptimizationFlags" = True,
    collect_events: bool = True,
) -> AnalysisReport:
    """Run :func:`preflight`; raise on error-severity findings.

    Raises:
        StaticAnalysisError: the report contains at least one error.
            The exception carries the full report as ``.report``.
    """
    report = preflight(
        query,
        limits=limits,
        dtd=dtd,
        optimize=optimize,
        collect_events=collect_events,
    )
    if not report.ok:
        first = report.errors[0]
        raise StaticAnalysisError(
            f"pre-flight analysis failed: {first.render()} "
            f"({len(report.errors)} error(s) total)",
            report=report,
        )
    return report
