"""The rpeq linter: static findings about a query before compilation.

Each structural rule (``RPQ001``–``RPQ006``) mirrors exactly one rewrite
of :func:`repro.rpeq.rewrite.simplify`, so a query at the simplifier's
fixpoint can never trigger them — which gives the linter its idempotence
property: re-linting ``simplify(q)`` reports a subset of the codes
reported for ``q``.  ``RPQ007`` is a performance note derived from the
paper's Sec. V complexity results and is intentionally *not* removable
by rewriting.  ``RPQ010``–``RPQ012`` need a DTD and use the label-graph
satisfiability analysis of :mod:`repro.dtd.analysis`.
"""

from __future__ import annotations

from ..dtd.analysis import SchemaAnalyzer
from ..dtd.model import Dtd
from ..errors import ReproError
from ..rpeq.ast import (
    Concat,
    Empty,
    Label,
    OptionalExpr,
    Plus,
    Qualifier,
    Rpeq,
    Star,
    Union,
)
from ..rpeq.parser import parse
from ..rpeq.rewrite import always_nonempty
from ..rpeq.unparse import unparse
from .diagnostics import AnalysisReport, Severity, Span, register_code
from .metrics import analyze, labels_used

RPQ001 = register_code(
    "RPQ001", Severity.WARNING, "lint", "Trivially-true qualifier condition"
)
RPQ002 = register_code(
    "RPQ002", Severity.WARNING, "lint", "Redundant closure chain"
)
RPQ003 = register_code(
    "RPQ003", Severity.WARNING, "lint", "Dead union branch"
)
RPQ004 = register_code(
    "RPQ004", Severity.WARNING, "lint", "Duplicate qualifier"
)
RPQ005 = register_code(
    "RPQ005", Severity.WARNING, "lint", "Redundant optional"
)
RPQ006 = register_code(
    "RPQ006", Severity.INFO, "lint", "Vacuous epsilon composition"
)
RPQ007 = register_code(
    "RPQ007", Severity.INFO, "lint", "Wildcard closure carrying qualifiers"
)
RPQ010 = register_code(
    "RPQ010", Severity.ERROR, "lint", "Query unsatisfiable under DTD"
)
RPQ011 = register_code(
    "RPQ011", Severity.ERROR, "lint", "Contradictory qualifier under DTD"
)
RPQ012 = register_code(
    "RPQ012", Severity.WARNING, "lint", "Label not declared in DTD"
)


def _render(expr: Rpeq) -> str:
    """Best-effort text form of a sub-expression for messages/details."""
    try:
        return unparse(expr)
    except ReproError:
        return repr(expr)


def _span_of(query_text: str | None, expr: Rpeq) -> Span | None:
    """Locate a sub-expression in the original query text, if possible.

    AST nodes carry no source offsets, so this searches for the unparsed
    rendering; ``None`` when the query was built programmatically or the
    rendering does not occur verbatim.
    """
    if query_text is None:
        return None
    try:
        fragment = unparse(expr)
    except ReproError:
        return None
    start = query_text.find(fragment)
    if start < 0:
        return None
    return Span(start, start + len(fragment))


def lint_query(
    query: str | Rpeq,
    *,
    dtd: Dtd | None = None,
    report: AnalysisReport | None = None,
) -> AnalysisReport:
    """Lint an rpeq query (text or AST); returns the findings.

    Structural findings are warnings/info — the query still evaluates
    correctly, just wastefully.  DTD findings can be errors: a query that
    cannot match any valid document is almost certainly a mistake.
    """
    if isinstance(query, str):
        text: str | None = query
        expr = parse(query)
    else:
        text = None
        expr = query

    out = report if report is not None else AnalysisReport()
    for node in expr.walk():
        _lint_node(node, text, out)
    _lint_profile(expr, text, out)
    if dtd is not None:
        _lint_against_dtd(expr, text, dtd, out)
    return out


def _lint_node(node: Rpeq, text: str | None, out: AnalysisReport) -> None:
    """Apply the structural rules to one AST node."""
    if isinstance(node, Qualifier):
        if always_nonempty(node.condition):
            out.add(
                RPQ001,
                f"qualifier condition '{_render(node.condition)}' is trivially "
                "true; the qualifier never filters anything",
                span=_span_of(text, node),
                expr=_render(node),
            )
        if (
            isinstance(node.base, Qualifier)
            and node.base.condition == node.condition
        ):
            out.add(
                RPQ004,
                f"duplicate qualifier '[{_render(node.condition)}]' — "
                "the second application is a no-op",
                span=_span_of(text, node),
                expr=_render(node),
            )
        return
    if isinstance(node, Concat):
        left, right = node.left, node.right
        if (
            isinstance(left, (Star, Plus))
            and isinstance(right, (Star, Plus))
            and left.label == right.label
            and not (isinstance(left, Plus) and isinstance(right, Plus))
        ):
            fused = (
                f"{left.label.name}*"
                if isinstance(left, Star) and isinstance(right, Star)
                else f"{left.label.name}+"
            )
            out.add(
                RPQ002,
                f"closure chain '{_render(left)}.{_render(right)}' is "
                f"equivalent to the single step '{fused}'",
                span=_span_of(text, node),
                expr=_render(node),
            )
        if isinstance(left, Empty) or isinstance(right, Empty):
            out.add(
                RPQ006,
                "composition with epsilon is a no-op",
                span=_span_of(text, node),
                expr=_render(node),
            )
        return
    if isinstance(node, Union):
        left, right = node.left, node.right
        if left == right:
            out.add(
                RPQ003,
                f"union branches are identical; '{_render(node)}' is "
                f"equivalent to '{_render(left)}'",
                span=_span_of(text, node),
                expr=_render(node),
            )
            return
        for absorber, absorbed in ((left, right), (right, left)):
            if (
                (
                    isinstance(absorber, Label)
                    and absorber.is_wildcard
                    and isinstance(absorbed, Label)
                )
                or (
                    isinstance(absorber, Plus)
                    and absorber.label.is_wildcard
                    and isinstance(absorbed, Plus)
                )
                or (
                    isinstance(absorber, Star)
                    and absorber.label.is_wildcard
                    and isinstance(absorbed, Star)
                )
            ):
                out.add(
                    RPQ003,
                    f"branch '{_render(absorbed)}' is dead: the wildcard "
                    f"branch '{_render(absorber)}' already matches "
                    "everything it can match",
                    span=_span_of(text, node),
                    expr=_render(node),
                )
                return
        if isinstance(left, Empty) or isinstance(right, Empty):
            out.add(
                RPQ006,
                f"union with epsilon; '{_render(node)}' is an optional "
                "in disguise",
                span=_span_of(text, node),
                expr=_render(node),
            )
        return
    if isinstance(node, OptionalExpr):
        inner = node.inner
        if isinstance(inner, (Empty, OptionalExpr, Star, Plus)):
            equivalent = (
                f"{inner.label.name}*"
                if isinstance(inner, (Star, Plus))
                else _render(inner)
            )
            out.add(
                RPQ005,
                f"optional is redundant: '{_render(node)}' is equivalent "
                f"to '{equivalent}'",
                span=_span_of(text, node),
                expr=_render(node),
            )
        return


def _lint_profile(expr: Rpeq, text: str | None, out: AnalysisReport) -> None:
    """Performance notes from the query's structural profile."""
    profile = analyze(expr)
    if profile.wildcard_closures > 0 and profile.qualifiers > 0:
        out.add(
            RPQ007,
            "wildcard closure combined with qualifiers (fragment "
            f"{profile.fragment}): condition formulas can grow with "
            "stream depth (paper Sec. V); consider a ResourceLimits "
            "formula-size bound",
            fragment=profile.fragment,
            wildcard_closures=profile.wildcard_closures,
            qualifiers=profile.qualifiers,
        )


def _lint_against_dtd(
    expr: Rpeq, text: str | None, dtd: Dtd, out: AnalysisReport
) -> None:
    """Schema-aware checks (``RPQ010``–``RPQ012``)."""
    analyzer = SchemaAnalyzer(dtd)
    declared = set(dtd.elements)
    for label in sorted(labels_used(expr) - declared):
        out.add(
            RPQ012,
            f"label '{label}' is not declared in the DTD (root "
            f"'{dtd.root}'); the step can never match a valid document",
            label=label,
        )
    if not analyzer.query_is_satisfiable(expr):
        out.add(
            RPQ010,
            "query is unsatisfiable under the DTD: no valid document "
            "produces a match",
            root=dtd.root,
        )
    for node in expr.walk():
        if isinstance(node, Qualifier) and not analyzer.condition_satisfiable_somewhere(
            node.condition
        ):
            out.add(
                RPQ011,
                f"qualifier condition '{_render(node.condition)}' is "
                "contradictory under the DTD: it holds at no reachable "
                "element type",
                span=_span_of(text, node),
                expr=_render(node),
            )
