"""Shared diagnostics framework for the static analyzer.

Every analysis pass (the rpeq linter, the network verifier, the cost
certifier, the snapshot-coverage meta-check) reports its findings as
:class:`Diagnostic` values collected into an :class:`AnalysisReport`.
Diagnostics carry a *stable code* (``RPQ001``, ``NET007``, ``COST002``,
…) so tests, CI gates and downstream tooling can key on findings without
parsing prose; codes are declared once in the :data:`CODES` registry,
which also drives the documentation catalogue (``docs/analysis.md``) and
the ``--list-codes`` CLI flag.

Reports render to aligned text (for humans) and to JSON (for CI); both
renderings are deterministic: diagnostics are ordered by severity, then
code, then span, then message, and the JSON contains no timestamps,
memory addresses or other run-varying data.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterator, Mapping


class Severity(enum.IntEnum):
    """Diagnostic severity; higher values are more severe."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """Lower-case name used in text and JSON renderings."""
        return self.name.lower()


@dataclass(frozen=True, slots=True)
class Span:
    """A half-open character range ``[start, end)`` in the query text.

    Spans are best-effort: AST nodes do not carry source offsets, so
    passes locate sub-expressions by searching the original text for
    their unparsed rendering.  A diagnostic without a span applies to
    the query (or network) as a whole.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid span [{self.start}, {self.end})")

    def to_obj(self) -> list[int]:
        """JSON encoding (a two-element list)."""
        return [self.start, self.end]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass.

    Attributes:
        code: stable identifier from the :data:`CODES` registry.
        severity: :class:`Severity` of the finding.
        message: human-readable, single-line description.
        span: best-effort location in the query text, or ``None``.
        source: the pass that produced the finding (``"lint"``,
            ``"network"``, ``"cost"``, ``"snapshot"``).
        details: JSON-serializable supporting data (the offending
            sub-expression, transducer name, computed bound, …).
    """

    code: str
    severity: Severity
    message: str
    span: Span | None = None
    source: str = ""
    details: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")

    def sort_key(self) -> tuple:
        """Deterministic ordering: severity desc, code, span, message."""
        span = (self.span.start, self.span.end) if self.span else (-1, -1)
        return (-int(self.severity), self.code, span, self.message)

    def to_obj(self) -> dict:
        """JSON-serializable encoding, deterministic across runs."""
        obj: dict[str, object] = {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
            "source": self.source,
        }
        if self.span is not None:
            obj["span"] = self.span.to_obj()
        if self.details:
            obj["details"] = {key: self.details[key] for key in sorted(self.details)}
        return obj

    def render(self) -> str:
        """One-line text rendering: ``CODE severity: message [@span]``."""
        where = f" @{self.span.start}..{self.span.end}" if self.span else ""
        return f"{self.code} {self.severity.label}: {self.message}{where}"


class AnalysisReport:
    """An ordered collection of diagnostics from one or more passes."""

    def __init__(self, diagnostics: list[Diagnostic] | None = None) -> None:
        self._diagnostics: list[Diagnostic] = list(diagnostics or ())

    # ------------------------------------------------------------------
    # collection

    def add(
        self,
        code: str,
        message: str,
        *,
        severity: Severity | None = None,
        span: Span | None = None,
        source: str | None = None,
        **details: object,
    ) -> Diagnostic:
        """Append a diagnostic; defaults come from the code registry."""
        declared = CODES[code]
        diagnostic = Diagnostic(
            code=code,
            severity=severity if severity is not None else declared.severity,
            message=message,
            span=span,
            source=source if source is not None else declared.source,
            details=details,
        )
        self._diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: "AnalysisReport") -> "AnalysisReport":
        """Merge another report's diagnostics into this one."""
        self._diagnostics.extend(other._diagnostics)
        return self

    # ------------------------------------------------------------------
    # inspection

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.sorted())

    def __len__(self) -> int:
        return len(self._diagnostics)

    def sorted(self) -> list[Diagnostic]:
        """Diagnostics in deterministic order (most severe first)."""
        return sorted(self._diagnostics, key=Diagnostic.sort_key)

    @property
    def errors(self) -> list[Diagnostic]:
        """Error-severity diagnostics only."""
        return [d for d in self.sorted() if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        """Warning-severity diagnostics only."""
        return [d for d in self.sorted() if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """``True`` when no error-severity diagnostic was reported."""
        return not self.errors

    def codes(self) -> set[str]:
        """The set of codes present in the report."""
        return {d.code for d in self._diagnostics}

    def by_code(self, code: str) -> list[Diagnostic]:
        """All diagnostics with a given code, in deterministic order."""
        return [d for d in self.sorted() if d.code == code]

    # ------------------------------------------------------------------
    # rendering

    def to_obj(self) -> dict:
        """JSON-serializable encoding of the whole report."""
        counts = {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "info": len(self._diagnostics) - len(self.errors) - len(self.warnings),
        }
        return {
            "ok": self.ok,
            "counts": counts,
            "diagnostics": [d.to_obj() for d in self.sorted()],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Stable JSON rendering (sorted keys, deterministic order)."""
        return json.dumps(self.to_obj(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Multi-line text rendering, one diagnostic per line."""
        if not self._diagnostics:
            return "no findings"
        return "\n".join(d.render() for d in self.sorted())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AnalysisReport {len(self._diagnostics)} finding(s), "
            f"{len(self.errors)} error(s)>"
        )


@dataclass(frozen=True, slots=True)
class CodeInfo:
    """Registry entry for one diagnostic code.

    Attributes:
        severity: the code's default severity.
        source: the pass that owns the code.
        title: short summary used by documentation and ``--list-codes``.
    """

    severity: Severity
    source: str
    title: str


#: Registry of every diagnostic code the analyzer can emit.  Codes are
#: append-only and stable across releases: tests, CI configuration and
#: user tooling key on them.
CODES: dict[str, CodeInfo] = {}


def register_code(code: str, severity: Severity, source: str, title: str) -> str:
    """Declare a diagnostic code (idempotent for identical declarations)."""
    info = CodeInfo(severity=severity, source=source, title=title)
    existing = CODES.get(code)
    if existing is not None and existing != info:
        raise ValueError(f"diagnostic code {code} already registered as {existing}")
    CODES[code] = info
    return code


def all_codes() -> dict[str, CodeInfo]:
    """A copy of the full registry (code -> :class:`CodeInfo`)."""
    return dict(sorted(CODES.items()))
