"""The cost certifier: static `d·σ` memory bounds checked against limits.

Theorem IV.2 bounds each transducer's memory by the stream depth ``d``
times the size ``σ`` of the condition formulas it stores.  ``d`` can be
known statically — from a configured ``ResourceLimits.max_depth`` or a
non-recursive DTD's depth bound — and ``σ`` admits a syntactic upper
bound computed from the query alone: formulas start as ``true`` (size
1), each qualifier conjoins one fresh variable, a closure step below a
qualifier can accumulate one disjunct per open ancestor (``× d``, the
Sec. V blow-up), and union/optional joins add their branches' bounds.

When both bounds are known, :func:`certify_cost` cross-checks the
certified ``σ̂`` against ``ResourceLimits.max_formula_size`` — turning a
guaranteed runtime :class:`~repro.errors.ResourceLimitError` into the
compile-time diagnostic ``COST002``.  ``following``/``preceding`` steps
buffer evidence whose size depends on stream *content*, not depth, so
queries using them are reported uncertifiable (``COST001``) rather than
given a wrong certificate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dtd.model import Dtd
from ..limits import ResourceLimits
from ..rpeq.ast import (
    Concat,
    Empty,
    Following,
    Label,
    OptionalExpr,
    Plus,
    Preceding,
    Qualifier,
    Rpeq,
    Star,
    Union,
)
from .diagnostics import AnalysisReport, Severity, register_code
from .metrics import analyze

COST000 = register_code(
    "COST000", Severity.INFO, "cost", "Cost certificate"
)
COST001 = register_code(
    "COST001", Severity.WARNING, "cost", "Memory bound not certifiable"
)
COST002 = register_code(
    "COST002", Severity.ERROR, "cost", "Certified σ bound exceeds ResourceLimits"
)
COST003 = register_code(
    "COST003", Severity.WARNING, "cost", "Pending-candidate ceiling is dynamic"
)
COST004 = register_code(
    "COST004", Severity.WARNING, "cost", "Buffered-event ceiling is dynamic"
)


@dataclass(frozen=True)
class CostCertificate:
    """The static worst-case memory bound of one query.

    Attributes:
        depth_bound: certified maximum stream depth ``d``, or ``None``
            when neither limits nor a (non-recursive) DTD provide one.
        depth_source: where ``d`` came from (``"limits"``, ``"dtd"``) or
            ``None``.
        sigma_bound: certified maximum condition-formula size ``σ̂``, or
            ``None`` when the query is uncertifiable (axis steps) or
            unbounded (closure under qualifier with unknown ``d``).
        degree: network degree (number of transducers), when known.
        per_transducer_bound: ``(d + 1) · σ̂`` — worst-case stack cells
            times cell size per transducer — or ``None``.
        network_bound: ``degree`` times the per-transducer bound, or
            ``None``.
    """

    depth_bound: int | None
    depth_source: str | None
    sigma_bound: int | None
    degree: int | None
    per_transducer_bound: int | None
    network_bound: int | None


def _mul(a: int | None, b: int | None) -> int | None:
    return None if a is None or b is None else a * b


def _add(a: int | None, b: int | None) -> int | None:
    return None if a is None or b is None else a + b


def _max(a: int | None, b: int | None) -> int | None:
    return None if a is None or b is None else max(a, b)


def _flatten_concat(node: Concat) -> list[Rpeq]:
    """Left-to-right parts of a concatenation chain, iteratively."""
    parts: list[Rpeq] = []
    stack: list[Rpeq] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, Concat):
            stack.append(current.right)
            stack.append(current.left)
        else:
            parts.append(current)
    return parts


def _sigma(expr: Rpeq, s_init: int | None, d: int | None) -> tuple[int | None, int | None]:
    """Bound formula sizes through ``expr``.

    ``s_init`` bounds the size of activation formulas entering the
    sub-network; returns ``(s_out, s_peak)`` — the bound on formulas
    leaving it and the largest bound anywhere inside it.  ``None`` means
    unbounded/uncertifiable and is absorbing.

    Driven by an explicit work stack: Lemma V.1 workloads are
    concatenation chains thousands of steps long, so recursing per node
    would exhaust the interpreter stack (as in the compiler and the
    metrics walk).
    """
    results: list[tuple[int | None, int | None]] = []
    work: list[tuple] = [("eval", expr, s_init)]
    while work:
        frame = work.pop()
        tag = frame[0]
        if tag == "eval":
            node, s = frame[1], frame[2]
            if isinstance(node, (Empty, Label)):
                results.append((s, s))
            elif isinstance(node, (Plus, Star)):
                # Closure stacks hold one scope formula per open ancestor
                # and emit their disjunction: with all-true formulas
                # (s == 1) the disjunction stays true; otherwise up to d
                # disjuncts of size s.
                if s == 1:
                    results.append((1, 1))
                else:
                    grown = _mul(s, d)
                    results.append((grown, grown))
            elif isinstance(node, (Following, Preceding)):
                # Evidence buffers grow with matching elements, not
                # depth — the d·σ certificate does not apply.
                results.append((None, None))
            elif isinstance(node, Concat):
                parts = _flatten_concat(node)
                work.append(("concat", parts, 1, s))
                work.append(("eval", parts[0], s))
            elif isinstance(node, Union):
                # Both branches start from the same incoming bound; the
                # join merges their activations for one tag and the
                # union transducer disjoins them.
                work.append(("union",))
                work.append(("eval", node.right, s))
                work.append(("eval", node.left, s))
            elif isinstance(node, OptionalExpr):
                work.append(("optional", s))
                work.append(("eval", node.inner, s))
            elif isinstance(node, Qualifier):
                work.append(("qualifier-base", node))
                work.append(("eval", node.base, s))
            else:  # pragma: no cover - exhaustive over rpeq nodes
                raise TypeError(f"unknown rpeq node {type(node).__name__}")
        elif tag == "concat":
            parts, index, peak_in = frame[1], frame[2], frame[3]
            prev_out, prev_peak = results.pop()
            peak = _max(peak_in, prev_peak)
            if index == len(parts):
                results.append((prev_out, peak))
            else:
                work.append(("concat", parts, index + 1, peak))
                work.append(("eval", parts[index], prev_out))
        elif tag == "union":
            right_out, right_peak = results.pop()
            left_out, left_peak = results.pop()
            merged = _add(left_out, right_out)
            results.append((merged, _max(merged, _max(left_peak, right_peak))))
        elif tag == "optional":
            s = frame[1]
            inner_out, inner_peak = results.pop()
            merged = _add(s, inner_out)
            results.append((merged, _max(merged, inner_peak)))
        elif tag == "qualifier-base":
            node = frame[1]
            base_out, base_peak = results.pop()
            # VC conjoins one fresh variable per activation.
            main = _add(base_out, 1)
            work.append(("qualifier-cond", main, base_peak))
            work.append(("eval", node.condition, main))
        else:  # tag == "qualifier-cond"
            main, base_peak = frame[1], frame[2]
            _cond_out, cond_peak = results.pop()
            # Contributions carry residues of filtered condition
            # formulas, bounded inside cond_peak; the main path
            # continues at `main`.
            results.append((main, _max(main, _max(base_peak, cond_peak))))
    return results.pop()


def certify_cost(
    expr: Rpeq,
    *,
    limits: ResourceLimits | None = None,
    dtd: Dtd | None = None,
    degree: int | None = None,
    collect_events: bool = True,
    report: AnalysisReport | None = None,
) -> tuple[CostCertificate, AnalysisReport]:
    """Compute the query's static memory certificate and check limits.

    Returns the certificate and the findings.  ``COST002`` (an error) is
    reported only when *both* bounds are known and the certified ``σ̂``
    exceeds ``limits.max_formula_size`` — the evaluation would be killed
    by the runtime guard in the worst case, so it should not start.
    """
    out = report if report is not None else AnalysisReport()

    depth_bound: int | None = None
    depth_source: str | None = None
    if limits is not None and limits.max_depth is not None:
        depth_bound = limits.max_depth
        depth_source = "limits"
    elif dtd is not None:
        dtd_depth = dtd.depth_bound()
        if dtd_depth is not None:
            depth_bound = dtd_depth
            depth_source = "dtd"

    profile = analyze(expr)
    _, sigma_bound = _sigma(expr, 1, depth_bound)

    per_transducer = (
        _mul(_add(depth_bound, 1), sigma_bound) if depth_bound is not None else None
    )
    network_bound = _mul(degree, per_transducer)
    certificate = CostCertificate(
        depth_bound=depth_bound,
        depth_source=depth_source,
        sigma_bound=sigma_bound,
        degree=degree,
        per_transducer_bound=per_transducer,
        network_bound=network_bound,
    )

    if sigma_bound is None:
        if any(isinstance(node, (Following, Preceding)) for node in expr.walk()):
            reason = (
                "following/preceding evidence buffers grow with stream "
                "content, not depth"
            )
        else:
            reason = (
                "closure under a qualifier with no depth bound: formula "
                "size grows with stream depth (paper Sec. V); set "
                "ResourceLimits.max_depth or supply a non-recursive DTD"
            )
        out.add(
            COST001,
            f"cannot certify the d·σ memory bound: {reason}",
            fragment=profile.fragment,
        )
    else:
        ceiling = limits.max_formula_size if limits is not None else None
        if ceiling is not None and sigma_bound > ceiling:
            out.add(
                COST002,
                f"certified worst-case formula size {sigma_bound} exceeds "
                f"ResourceLimits.max_formula_size={ceiling}; evaluation "
                "would be rejected by the runtime σ guard on adversarial "
                "input",
                sigma_bound=sigma_bound,
                max_formula_size=ceiling,
            )
    if limits is not None:
        if limits.max_pending_candidates is not None and profile.qualifiers > 0:
            out.add(
                COST003,
                "pending-candidate count depends on how many elements "
                "match before their qualifiers determine; the ceiling of "
                f"{limits.max_pending_candidates} cannot be certified "
                "statically",
                max_pending_candidates=limits.max_pending_candidates,
            )
        if limits.max_buffered_events is not None and collect_events:
            out.add(
                COST004,
                "buffered-event count depends on the size of matched "
                f"fragments; the ceiling of {limits.max_buffered_events} "
                "cannot be certified statically (collect_events is on)",
                max_buffered_events=limits.max_buffered_events,
            )
    out.add(
        COST000,
        "cost certificate: "
        f"d={_fmt(depth_bound)} ({depth_source or 'unknown'}), "
        f"σ̂={_fmt(sigma_bound)}, degree={_fmt(degree)}, "
        f"per-transducer ≤ {_fmt(per_transducer)}, "
        f"network ≤ {_fmt(network_bound)}",
        depth_bound=depth_bound,
        depth_source=depth_source,
        sigma_bound=sigma_bound,
        degree=degree,
        per_transducer_bound=per_transducer,
        network_bound=network_bound,
    )
    return certificate, out


def _fmt(value: int | None) -> str:
    return "∞" if value is None else str(value)
