"""Command-line interface: ``spex`` (or ``python -m repro``).

Subcommands::

    spex query QUERY [FILE]          evaluate an rpeq against a file/stdin
    spex serve QUERY... [--file F]   multi-query serving with bulkheads,
                                     breakers, deadlines, admission
    spex xpath XPATH [FILE]          same, with an XPath front-end
    spex cq CQ [FILE]                evaluate a conjunctive query
    spex explain QUERY               show the compiled transducer network
    spex analyze [QUERY]             static analysis: lint, verify, certify
    spex stats FILE                  stream statistics (size, depth, labels)

With no FILE, the XML document is read from stdin — so the tool composes
with pipes the way a stream processor should::

    generate_feed | spex query '_*.trade[alert].price'
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterator

from .core.engine import SpexEngine
from .cq.engine import CqEngine
from .errors import ReproError
from .limits import ResourceLimits
from .rpeq.xpath import xpath_to_rpeq
from .xmlstream.events import Event
from .xmlstream.parser import parse_stream
from .xmlstream.recovery import ErrorReport
from .xmlstream.stats import measure

#: Process exit codes, uniform across every serving mode (in-process,
#: ``--shards N``, ``--listen``): 0 = clean, 1 = fatal error, 2 = usage,
#: 3 = completed but degraded (shed/deadline/quarantine/forced close).
EXIT_OK = 0
EXIT_FATAL = 1
EXIT_USAGE = 2
EXIT_DEGRADED = 3


def _events_from(path: str | None) -> Iterator[Event]:
    if path is None:
        return parse_stream(sys.stdin.buffer)
    with open(path, "rb") as handle:
        # Materialize lazily via a generator bound to the handle's life.
        def generate() -> Iterator[Event]:
            with open(path, "rb") as inner:
                yield from parse_stream(inner)

        handle.close()
        return generate()


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _limits_from(args: argparse.Namespace) -> ResourceLimits | None:
    max_depth = getattr(args, "max_depth", None)
    max_buffered = getattr(args, "max_buffered", None)
    if max_depth is None and max_buffered is None:
        return None
    return ResourceLimits(max_depth=max_depth, max_buffered_events=max_buffered)


def _cmd_query(args: argparse.Namespace) -> int:
    on_error = getattr(args, "on_error", "strict")
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    resume = getattr(args, "resume", False)
    supervisor = None
    if checkpoint_dir is not None or resume:
        import os

        from .core.checkpoint import Checkpoint
        from .core.supervisor import (
            CHECKPOINT_FILENAME,
            Supervisor,
            SupervisorConfig,
        )

        if args.file is None:
            print(
                "error: --checkpoint-dir/--resume need a FILE argument "
                "(stdin cannot be re-read on resume)",
                file=sys.stderr,
            )
            return EXIT_USAGE
        if on_error != "strict":
            print(
                "error: checkpointing requires --on-error strict",
                file=sys.stderr,
            )
            return EXIT_USAGE
        if resume and checkpoint_dir is None:
            print(
                "error: --resume needs --checkpoint-dir to find the "
                "checkpoint file",
                file=sys.stderr,
            )
            return EXIT_USAGE
        checkpoint = None
        if resume:
            checkpoint = Checkpoint.load(
                os.path.join(checkpoint_dir, CHECKPOINT_FILENAME)
            )
            # Rebuild the engine exactly as the checkpoint requires, so
            # resume compatibility is guaranteed.
            engine = SpexEngine.from_checkpoint(
                checkpoint, limits=_limits_from(args)
            )
        else:
            engine = SpexEngine(
                args.query, collect_events=not args.count, limits=_limits_from(args)
            )
        config = SupervisorConfig(
            checkpoint_dir=checkpoint_dir,
            checkpoint_every_events=getattr(args, "checkpoint_every", None),
        )
        supervisor = Supervisor(engine, lambda: args.file, config=config)
        matches = supervisor.run(checkpoint)
        report = ErrorReport()
    else:
        engine = SpexEngine(
            args.query, collect_events=not args.count, limits=_limits_from(args)
        )
        report = ErrorReport()
        matches = engine.run(
            _events_from(args.file), on_error=on_error, report=report
        )
    matched = 0
    for match in matches:
        matched += 1
        if not args.count:
            print(f"-- match {matched} (position {match.position}, <{match.label}>)")
            print(match.to_xml())
    if args.count:
        print(matched)
    else:
        print(f"-- {matched} match(es)")
    if getattr(args, "stats", False):
        print("-- engine statistics")
        print(engine.stats.summary())
    if not report.ok:
        print(f"-- recovered: {report.summary()}", file=sys.stderr)
    if supervisor is not None:
        counters = engine.robustness
        summary = supervisor.report
        print(
            f"-- recovery: {summary.connects} connect(s), "
            f"{counters.retries} retr(y/ies), "
            f"{counters.stalls_detected} stall(s), "
            f"{counters.checkpoints_written} checkpoint(s) written, "
            f"{counters.restores} restore(s)",
            file=sys.stderr,
        )
        if summary.last_checkpoint_path is not None:
            print(
                f"-- checkpoint: {summary.last_checkpoint_path} "
                f"(position {supervisor._checkpointed_position})",
                file=sys.stderr,
            )
    return 0


def _report_outcomes(outcomes: dict) -> bool:
    """Print unhealthy/degraded query outcomes to stderr.

    Shared by all three serving modes so their stderr shape and the
    clean/degraded exit-code decision stay uniform.  Returns ``True``
    when anything warranted :data:`EXIT_DEGRADED`.
    """
    degraded = False
    for query_id, outcome in sorted(outcomes.items()):
        # a clean close (unsubscribe, orderly disconnect) is normal
        # lifecycle, not degradation — only flag it if it was forced
        clean = outcome.healthy or (
            outcome.status == "closed" and outcome.code is None
        )
        if clean and not outcome.degraded:
            continue
        degraded = True
        detail = f"--   {query_id}: {outcome.status}"
        if outcome.code is not None:
            detail += f" [{outcome.code}]"
        if outcome.reason is not None:
            detail += f" {outcome.reason}"
        print(detail, file=sys.stderr)
    return degraded


def _cmd_serve(args: argparse.Namespace) -> int:
    from .core.multiquery import MultiQueryEngine
    from .core.serving import AdmissionPolicy, ServingPolicy
    from .xmlstream.parser import ParserLimits, iter_documents

    queries: dict[str, str] = {}
    for index, spec in enumerate(args.queries, 1):
        if "=" in spec:
            query_id, _, text = spec.partition("=")
        else:
            query_id, text = f"q{index}", spec
        if query_id in queries:
            print(f"error: duplicate query id {query_id!r}", file=sys.stderr)
            return EXIT_USAGE
        queries[query_id] = text
    if args.listen is None and not queries:
        print(
            "error: at least one QUERY is required (queries arrive over "
            "the wire only in --listen mode)",
            file=sys.stderr,
        )
        return EXIT_USAGE

    admission = None
    if args.admission is not None:
        hard, _, soft = args.admission.partition(":")
        try:
            admission = AdmissionPolicy(
                reject_sigma=int(hard),
                degrade_sigma=int(soft) if soft else None,
                depth_bound=getattr(args, "max_depth", None),
            )
        except ValueError as exc:
            print(f"error: bad --admission value: {exc}", file=sys.stderr)
            return EXIT_USAGE

    priorities: dict[str, int] = {}
    for spec in args.priority or ():
        query_id, _, value = spec.partition("=")
        if not value or query_id not in queries:
            print(f"error: bad --priority {spec!r} (want ID=N)", file=sys.stderr)
            return EXIT_USAGE
        priorities[query_id] = int(value)

    policy = ServingPolicy(
        quarantine=args.quarantine != "off",
        stream_deadline=(
            args.deadline_ms / 1000.0 if args.deadline_ms is not None else None
        ),
        doc_deadline=(
            args.doc_deadline_ms / 1000.0
            if args.doc_deadline_ms is not None
            else None
        ),
        shed_buffered_events=args.shed_buffered,
        priorities=priorities,
    )
    parser_limits = ParserLimits.default() if args.harden else None
    if args.listen is not None:
        return _serve_listen(args, queries, policy, admission)
    if args.shards > 1:
        return _serve_sharded(args, queries, policy, admission, parser_limits)
    engine = MultiQueryEngine(
        queries,
        collect_events=not args.count,
        limits=_limits_from(args),
        admission=admission,
    )
    report = ErrorReport()
    files = args.file or []
    if not files:
        source: object = parse_stream(sys.stdin.buffer, limits=parser_limits)
    elif len(files) == 1:
        source = files[0]
    else:
        source = iter_documents(files, limits=parser_limits, report=report)
    matches = engine.serve(
        source,
        policy=policy,
        on_error=args.on_error if args.on_error is not None else "skip",
        report=report,
        parser_limits=parser_limits,
    )
    counts: dict[str, int] = {}
    total = 0
    for query_id, match in matches:
        counts[query_id] = counts.get(query_id, 0) + 1
        total += 1
        if not args.count:
            print(
                f"-- {query_id}: match {counts[query_id]} "
                f"(position {match.position}, <{match.label}>)"
            )
            print(match.to_xml())
    if args.count:
        for query_id in queries:
            print(f"{query_id}\t{counts.get(query_id, 0)}")
    else:
        print(f"-- {total} match(es) across {len(queries)} quer(y/ies)")
    serving = engine.serving
    print(f"-- serving: {serving.summary()}", file=sys.stderr)
    degraded_exit = _report_outcomes(serving.outcomes)
    if not report.ok:
        print(f"-- recovered: {report.summary()}", file=sys.stderr)
    return EXIT_DEGRADED if degraded_exit else EXIT_OK


def _serve_listen(
    args: argparse.Namespace, queries: dict[str, str], policy, admission
) -> int:
    """``spex serve --listen HOST:PORT``: the asyncio network frontend."""
    import asyncio
    import signal

    from .service.server import ServiceConfig, SpexService

    if queries:
        print(
            "error: --listen takes queries from subscribers over the "
            "wire, not from the command line",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.shards > 1:
        print("error: --listen and --shards are exclusive", file=sys.stderr)
        return EXIT_USAGE
    if args.file:
        print(
            "error: --listen ingests documents from producer "
            "connections, not --file",
            file=sys.stderr,
        )
        return EXIT_USAGE
    host, sep, port_text = args.listen.rpartition(":")
    try:
        port = int(port_text)
        if not sep or not host or not 0 <= port <= 65535:
            raise ValueError(port_text)
    except ValueError:
        print(
            f"error: bad --listen address {args.listen!r} (want HOST:PORT; "
            "port 0 binds an ephemeral port)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.resume and args.wal_file is None:
        print(
            "error: --resume needs --wal-file (the write-ahead log is "
            "what makes the resume exact)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    try:
        config = ServiceConfig(
            host=host,
            port=port,
            serving=policy,
            admission=admission,
            limits=_limits_from(args),
            overflow=args.overflow,
            subscriber_queue=args.queue_size,
            checkpoint_path=args.checkpoint_file,
            checkpoint_every_documents=args.checkpoint_every_docs,
            checkpoint_keep=args.checkpoint_keep,
            wal_path=args.wal_file,
            wal_fsync_documents=args.wal_fsync_docs,
            resume=args.resume,
            max_subscriptions_per_tenant=args.tenant_budget,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    async def _run() -> SpexService:
        service = SpexService(config)
        bound_host, bound_port = await service.start()
        # announced (and flushed) before serving so a supervisor — or a
        # test — can discover an ephemeral port by reading one line
        print(f"-- listening on {bound_host}:{bound_port}", flush=True)
        if service.resumed:
            print(
                f"-- resumed: {service.committed_documents} committed "
                f"document(s), {service.session_count} durable "
                f"session(s)",
                file=sys.stderr,
            )
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, service.request_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await service.serve_until_done()
        return service

    try:
        service = asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - handler install raced
        # SIGINT is a drain request, exactly like SIGTERM.  The asyncio
        # handler normally swallows it; this fallback covers the narrow
        # window before it is installed (or platforms without
        # add_signal_handler) — still no traceback, a normalized code.
        print("-- interrupted before a graceful drain could run", file=sys.stderr)
        return EXIT_FATAL
    serving = service.engine.serving
    stats = service.stats
    print(f"-- serving: {serving.summary()}", file=sys.stderr)
    print(
        f"-- service: {stats.connections} connection(s), "
        f"{stats.documents_ingested} document(s) ingested, "
        f"{stats.documents_rejected} rejected, "
        f"{stats.frames_shed} frame(s) shed, "
        f"{stats.forced_disconnects} forced disconnect(s), "
        f"{stats.checkpoints_written} checkpoint(s) written",
        file=sys.stderr,
    )
    degraded_exit = _report_outcomes(serving.outcomes)
    return EXIT_DEGRADED if degraded_exit or service.degraded else EXIT_OK


def _serve_sharded(
    args: argparse.Namespace,
    queries: dict[str, str],
    policy,
    admission,
    parser_limits,
) -> int:
    """``spex serve --shards N``: crash-isolated multi-process serving."""
    from .core.shards import ShardCoordinator, ShardConfig
    from .xmlstream.parser import iter_documents

    if args.on_error not in (None, "strict"):
        # Only warn when the user *asked* for a non-strict policy; the
        # serve default (skip) silently becomes strict under shards.
        print(
            "-- shards: per-shard checkpoints require strict parsing; "
            f"--on-error {args.on_error} ignored",
            file=sys.stderr,
        )
    files = args.file or []
    if not files:
        source: object = parse_stream(sys.stdin.buffer, limits=parser_limits)
    elif len(files) == 1:
        source = files[0]
    else:
        source = iter_documents(files, limits=parser_limits)
    coordinator = ShardCoordinator(
        queries,
        config=ShardConfig(
            shards=args.shards,
            partition=args.partition,
            heartbeat_timeout=args.heartbeat_ms / 1000.0,
        ),
        policy=policy,
        collect_events=not args.count,
        limits=_limits_from(args),
        admission=admission,
        parser_limits=parser_limits,
    )
    result = coordinator.run(source)
    total = 0
    for query_id in queries:
        for index, match in enumerate(result.matches[query_id], 1):
            total += 1
            if not args.count:
                print(
                    f"-- {query_id}: match {index} "
                    f"(position {match.position}, <{match.label}>)"
                )
                print(match.to_xml())
    if args.count:
        for query_id in queries:
            print(f"{query_id}\t{len(result.matches[query_id])}")
    else:
        print(f"-- {total} match(es) across {len(queries)} quer(y/ies)")
    print(f"-- shards: {result.summary()}", file=sys.stderr)
    for entry in result.shard_log:
        print(
            f"--   shard {entry.shard}#{entry.incarnation} "
            f"[{entry.code}] {entry.detail}",
            file=sys.stderr,
        )
    degraded_exit = _report_outcomes(result.report.outcomes)
    return EXIT_DEGRADED if degraded_exit else EXIT_OK


def _cmd_xpath(args: argparse.Namespace) -> int:
    expr = xpath_to_rpeq(args.xpath)
    args.query = expr
    return _cmd_query(args)


def _cmd_cq(args: argparse.Namespace) -> int:
    engine = CqEngine(args.cq, collect_events=not args.count)
    counts: dict[str, int] = {}
    for variable, match in engine.run(_events_from(args.file)):
        counts[variable] = counts.get(variable, 0) + 1
        if not args.count:
            print(f"-- {variable} (position {match.position}, <{match.label}>)")
            print(match.to_xml())
    for variable in engine.query.head:
        print(f"-- {variable}: {counts.get(variable, 0)} binding(s)")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    engine = SpexEngine(args.query)
    print(engine.describe_network())
    print(f"-- network degree: {engine.network_degree()}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .core.trace import trace_run

    print(trace_run(args.query, _events_from(args.file)))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from .analysis import all_codes, preflight

    if args.list_codes:
        for code, info in all_codes().items():
            print(f"{code}  {info.severity.label:<7}  [{info.source}]  {info.title}")
        return 0

    if args.workloads:
        from .workloads import query_corpus

        targets = list(query_corpus().items())
    elif args.query is not None:
        targets = [("query", args.query)]
    else:
        print("error: give a QUERY, --workloads, or --list-codes", file=sys.stderr)
        return EXIT_USAGE

    dtd = None
    if args.dtd is not None:
        from .dtd import parse_dtd

        with open(args.dtd, "r", encoding="utf-8") as handle:
            dtd = parse_dtd(handle.read())

    limits = None
    if args.max_depth is not None or args.max_formula_size is not None:
        limits = ResourceLimits(
            max_depth=args.max_depth, max_formula_size=args.max_formula_size
        )

    if args.rewrite and not args.plan:
        print("error: --rewrite requires --plan", file=sys.stderr)
        return EXIT_USAGE
    if args.check_lanes and not args.plan:
        print("error: --check-lanes requires --plan", file=sys.stderr)
        return EXIT_USAGE

    reports = {
        name: preflight(text, limits=limits, dtd=dtd) for name, text in targets
    }
    plans = {}
    if args.plan:
        from .analysis import factor_common_prefixes, lane_counts, plan_query

        for name, text in targets:
            plans[name], _ = plan_query(
                text,
                limits=limits,
                dtd=dtd,
                rewrite=args.rewrite,
                report=reports[name],
            )
        if len(targets) > 1:
            # Shared-prefix groups (RWR010) land on the first report so
            # the JSON stays keyed per query.
            factor_common_prefixes(dict(targets), report=reports[targets[0][0]])
    failed = any(not report.ok for report in reports.values())

    lane_problems: list[str] = []
    if args.check_lanes:
        from .analysis import check_lane_coverage

        lane_problems = check_lane_coverage(
            {
                name: {
                    "analysis": report.to_obj(),
                    "plan": plans[name].to_obj(),
                }
                for name, report in reports.items()
            }
        )

    if args.json:
        if args.plan:
            payload = {
                name: {
                    "analysis": report.to_obj(),
                    "plan": plans[name].to_obj(),
                }
                for name, report in reports.items()
            }
        else:
            payload = {name: report.to_obj() for name, report in reports.items()}
        print(json.dumps(payload, indent=2, sort_keys=True, ensure_ascii=False))
    else:
        for name, report in reports.items():
            if len(targets) > 1 and (len(report) or not report.ok):
                print(f"== {name}")
            if len(targets) == 1 or len(report) or not report.ok:
                print(report.render())
        if args.plan:
            for name, plan in plans.items():
                sigma = "∞" if plan.sigma_refined is None else plan.sigma_refined
                worst = "∞" if plan.sigma_worst is None else plan.sigma_worst
                print(
                    f"-- plan {name}: lane={plan.lane} σ̂={sigma} "
                    f"(worst {worst}) prefix={plan.prefix or 'ε'} "
                    f"rewrites={plan.rewrite_steps}"
                )
            counts = lane_counts(plans)
            print(
                "-- lanes: "
                + ", ".join(f"{lane}={n}" for lane, n in counts.items())
            )
        clean = sum(1 for report in reports.values() if report.ok)
        print(f"-- {clean}/{len(reports)} quer(y/ies) clean")
    for problem in lane_problems:
        print(f"lane check: {problem}", file=sys.stderr)
    return 1 if failed or lane_problems else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    # NB: ``from .bench import compare`` would bind the re-exported
    # *function*, not the submodule — import the needed names directly.
    from .bench import trajectory
    from .bench.compare import DEFAULT_THROUGHPUT_TOLERANCE
    from .bench.compare import compare as compare_runs

    if not args.smoke:
        print(
            "error: pass --smoke (the pinned smoke subset is the only "
            "bench mode)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    run = trajectory.run_smoke(
        measure_memory=not args.no_memory, workloads=args.workloads
    )
    text = json.dumps(run, indent=2, sort_keys=True)
    if args.json:
        print(text)
    else:
        for name, row in run["workloads"].items():
            rate = (
                f"{row['events_per_second']:>12,.0f} ev/s"
                if row["events_per_second"]
                else f"{'-':>17}"
            )
            print(
                f"{name:14s} {row['seconds']:8.3f}s {rate} "
                f"matches={row['matches']}"
            )
    if args.output:
        trajectory.write_result(run, args.output)
    if args.baseline:
        tolerance = (
            DEFAULT_THROUGHPUT_TOLERANCE
            if args.tolerance is None
            else args.tolerance
        )
        base = Path(args.baseline)
        if base.is_dir():
            entry = trajectory.latest_baseline(base)
            if entry is None:
                print(
                    f"error: no BENCH_*.json baseline in {base}",
                    file=sys.stderr,
                )
                return EXIT_USAGE
            base = entry
        try:
            report = compare_runs(
                trajectory.load_result(base), run, throughput_tolerance=tolerance
            )
        except ValueError as exc:
            # e.g. --workload subset narrower than what the baseline
            # records, or a schema-version mismatch
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        print(report.render())
        return 0 if report.ok else 1
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    stats = measure(_events_from(args.file))
    print(f"messages        : {stats.messages}")
    print(f"elements        : {stats.elements}")
    print(f"max depth       : {stats.max_depth}")
    print(f"distinct labels : {stats.distinct_labels}")
    print(f"text bytes      : {stats.text_bytes}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="spex",
        description="Streamed evaluation of regular path expressions "
        "with qualifiers against XML streams (SPEX reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="evaluate an rpeq query")
    query.add_argument("query", help="rpeq, e.g. '_*.a[b].c'")
    query.add_argument("file", nargs="?", help="XML file (default: stdin)")
    query.add_argument("--count", action="store_true", help="print only the match count")
    query.add_argument(
        "--stats", action="store_true", help="print the engine's resource profile"
    )
    query.add_argument(
        "--on-error",
        choices=["strict", "skip", "repair"],
        default="strict",
        dest="on_error",
        help="recovery policy for malformed documents: strict aborts "
        "with a nonzero exit (default), skip quarantines the bad "
        "document, repair fixes the stream in flight",
    )
    query.add_argument(
        "--max-depth",
        type=_positive_int,
        metavar="N",
        dest="max_depth",
        help="abort (strict) or skip the document when stream nesting "
        "exceeds N (depth-bomb guard)",
    )
    query.add_argument(
        "--max-buffered",
        type=_positive_int,
        metavar="N",
        dest="max_buffered",
        help="cap the output transducer's event buffer at N events",
    )
    query.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        dest="checkpoint_dir",
        help="run supervised and keep a rolling, atomically-replaced "
        "checkpoint file in DIR (requires FILE; strict mode only)",
    )
    query.add_argument(
        "--checkpoint-every",
        type=_positive_int,
        metavar="N",
        dest="checkpoint_every",
        help="checkpoint every N processed events (with --checkpoint-dir)",
    )
    query.add_argument(
        "--resume",
        action="store_true",
        help="resume from the checkpoint in --checkpoint-dir instead of "
        "re-reading the stream from the start; the query and options "
        "are restored from the checkpoint",
    )
    query.set_defaults(func=_cmd_query)

    serve = sub.add_parser(
        "serve",
        help="evaluate many queries in one pass with bulkhead isolation, "
        "circuit breakers, deadlines and admission control",
        description="Exit codes are uniform across all serving modes "
        "(in-process, --shards N, --listen): 0 clean, 1 fatal, 2 usage, "
        "3 completed but degraded (shed/deadline/quarantine/forced "
        "disconnect).",
    )
    serve.add_argument(
        "queries",
        nargs="*",
        metavar="QUERY",
        help="rpeq queries, optionally named as ID=RPEQ (default ids: "
        "q1, q2, ...); required except with --listen, where subscribers "
        "register queries over the wire",
    )
    serve.add_argument(
        "--file",
        action="append",
        metavar="FILE",
        help="XML document file; repeatable — several files form one "
        "multi-document stream (default: stdin)",
    )
    serve.add_argument(
        "--count", action="store_true", help="print one 'id<TAB>count' line per query"
    )
    serve.add_argument(
        "--on-error",
        choices=["strict", "skip", "repair"],
        default=None,
        dest="on_error",
        help="recovery policy for malformed documents (default: skip — "
        "serving favours survival over strictness; sharded serving "
        "always runs strict)",
    )
    serve.add_argument(
        "--deadline-ms",
        type=_positive_int,
        metavar="MS",
        dest="deadline_ms",
        help="wall-clock budget for the whole pass; expiry detaches every "
        "query with a DEADLINE_STREAM outcome, never a global abort",
    )
    serve.add_argument(
        "--doc-deadline-ms",
        type=_positive_int,
        metavar="MS",
        dest="doc_deadline_ms",
        help="wall-clock budget per document; expired queries rejoin at "
        "the next document boundary",
    )
    serve.add_argument(
        "--admission",
        metavar="SIGMA[:SOFT]",
        help="admission control: reject queries whose certified σ̂ bound "
        "exceeds SIGMA; with :SOFT, queries between SOFT and SIGMA are "
        "admitted with degraded buffer ceilings (uses --max-depth as "
        "the certification depth bound)",
    )
    serve.add_argument(
        "--quarantine",
        choices=["on", "off"],
        default="on",
        help="bulkhead isolation: 'on' (default) quarantines a failing "
        "query and keeps the rest streaming; 'off' lets the failure "
        "propagate",
    )
    serve.add_argument(
        "--shed-buffered",
        type=_positive_int,
        metavar="N",
        dest="shed_buffered",
        help="aggregate buffered-events high-water mark; crossing it "
        "sheds the lowest-priority queries (never the stream)",
    )
    serve.add_argument(
        "--priority",
        action="append",
        metavar="ID=N",
        help="shedding priority for one query (lower is shed first; "
        "default 0); repeatable",
    )
    serve.add_argument(
        "--harden",
        action="store_true",
        help="arm the untrusted-input parser ceilings (entity "
        "amplification, text/attribute/name lengths)",
    )
    serve.add_argument(
        "--max-depth",
        type=_positive_int,
        metavar="N",
        dest="max_depth",
        help="per-query depth guard, and the admission depth bound",
    )
    serve.add_argument(
        "--max-buffered",
        type=_positive_int,
        metavar="N",
        dest="max_buffered",
        help="cap each query's output buffer at N events",
    )
    serve.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        metavar="N",
        help="partition the subscriptions across N crash-isolated worker "
        "processes with supervised restart and poison-pill quarantine "
        "(default: 1 = in-process serving)",
    )
    serve.add_argument(
        "--heartbeat-ms",
        type=_positive_int,
        default=2000,
        metavar="MS",
        dest="heartbeat_ms",
        help="worker silence budget before a shard is declared stalled "
        "and restarted from its checkpoint (default: 2000; only with "
        "--shards > 1)",
    )
    serve.add_argument(
        "--partition",
        choices=["hash", "prefix", "cost"],
        default="hash",
        help="shard assignment strategy: stable hash of the query id, "
        "prefix affinity (queries sharing their first path step "
        "co-locate), or cost balancing (planner-refined σ̂ weights, "
        "heaviest queries spread first); only with --shards > 1",
    )
    serve.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default=None,
        help="run as a network service: producers push XML event "
        "streams, subscribers register queries and receive matches "
        "over NDJSON/TCP; port 0 binds an ephemeral port (announced "
        "on stdout); SIGTERM drains gracefully",
    )
    serve.add_argument(
        "--overflow",
        choices=["block", "shed_oldest", "disconnect"],
        default="block",
        help="--listen only: default policy when a subscriber's output "
        "queue fills — block (end-to-end backpressure), shed_oldest "
        "(lossy, SHED001 notices), disconnect (SVC006 bye); "
        "subscribers may override per connection",
    )
    serve.add_argument(
        "--queue-size",
        type=_positive_int,
        default=256,
        metavar="N",
        dest="queue_size",
        help="--listen only: default per-subscriber output queue bound "
        "(default: 256)",
    )
    serve.add_argument(
        "--checkpoint-file",
        metavar="FILE",
        dest="checkpoint_file",
        help="--listen only: write a document-boundary checkpoint here "
        "on graceful drain (resumable with the offline engine, or "
        "as a service with --resume)",
    )
    serve.add_argument(
        "--checkpoint-every-docs",
        type=_positive_int,
        default=None,
        metavar="N",
        dest="checkpoint_every_docs",
        help="--listen only: also checkpoint in the background every N "
        "committed documents, without stopping ingestion (default: "
        "drain-only)",
    )
    serve.add_argument(
        "--checkpoint-keep",
        type=_positive_int,
        default=1,
        metavar="N",
        dest="checkpoint_keep",
        help="--listen only: checkpoint generations to retain (FILE, "
        "FILE.1, ...); load falls back to the newest one that "
        "verifies (default: 1)",
    )
    serve.add_argument(
        "--wal-file",
        metavar="FILE",
        dest="wal_file",
        help="--listen only: write-ahead match log enabling durable "
        "subscriber sessions (session tokens, per-subscription "
        "sequence numbers, exactly-once resume)",
    )
    serve.add_argument(
        "--wal-fsync-docs",
        type=_positive_int,
        default=1,
        metavar="N",
        dest="wal_fsync_docs",
        help="--listen only: fsync the WAL every N document markers "
        "(default: 1, every document)",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="--listen only: reconstruct the previous run's pump, "
        "subscriptions and durable sessions from --checkpoint-file + "
        "--wal-file before accepting connections",
    )
    serve.add_argument(
        "--tenant-budget",
        type=_positive_int,
        default=None,
        metavar="N",
        dest="tenant_budget",
        help="--listen only: cap concurrent subscriptions per tenant "
        "(excess rejected with SVC009)",
    )
    serve.set_defaults(func=_cmd_serve)

    xpath = sub.add_parser("xpath", help="evaluate a forward-fragment XPath")
    xpath.add_argument("xpath", help="XPath, e.g. '//country[province]/name'")
    xpath.add_argument("file", nargs="?", help="XML file (default: stdin)")
    xpath.add_argument("--count", action="store_true", help="print only the match count")
    xpath.set_defaults(func=_cmd_xpath)

    cq = sub.add_parser("cq", help="evaluate a conjunctive query")
    cq.add_argument("cq", help="e.g. 'q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3'")
    cq.add_argument("file", nargs="?", help="XML file (default: stdin)")
    cq.add_argument("--count", action="store_true", help="print only binding counts")
    cq.set_defaults(func=_cmd_cq)

    explain = sub.add_parser("explain", help="show the compiled network")
    explain.add_argument("query", help="rpeq query")
    explain.set_defaults(func=_cmd_explain)

    trace = sub.add_parser(
        "trace", help="show the per-transducer transition table (Fig. 4/5/13 style)"
    )
    trace.add_argument("query", help="rpeq query")
    trace.add_argument("file", nargs="?", help="XML file (default: stdin)")
    trace.set_defaults(func=_cmd_trace)

    analyze = sub.add_parser(
        "analyze",
        help="static analysis: lint the query, verify the compiled "
        "network, certify the d·σ memory bound (no stream needed)",
    )
    analyze.add_argument("query", nargs="?", help="rpeq query")
    analyze.add_argument(
        "--workloads",
        action="store_true",
        help="analyze the whole built-in workload query corpus instead "
        "of a single query (the CI gate)",
    )
    analyze.add_argument(
        "--dtd", metavar="FILE", help="DTD file to check satisfiability against"
    )
    analyze.add_argument(
        "--json",
        action="store_true",
        help="emit the report(s) as deterministic JSON",
    )
    analyze.add_argument(
        "--list-codes",
        action="store_true",
        dest="list_codes",
        help="print every registered diagnostic code and exit",
    )
    analyze.add_argument(
        "--plan",
        action="store_true",
        help="classify each query into an execution lane (lazy-DFA / "
        "hybrid / full network) with a refined per-query σ̂ bound",
    )
    analyze.add_argument(
        "--rewrite",
        action="store_true",
        help="with --plan: run the certified rewrite engine first; every "
        "applied rule carries a machine-checked equivalence certificate "
        "(a failed certificate is an ERROR and the rewrite is discarded)",
    )
    analyze.add_argument(
        "--check-lanes",
        action="store_true",
        dest="check_lanes",
        help="with --plan: validate the lane invariants CI gates on — "
        "all execution lanes exercised, refined σ̂ within the "
        "worst-case bound, every rewrite certificate discharged "
        "(nonzero exit on any problem)",
    )
    analyze.add_argument(
        "--max-depth",
        type=_positive_int,
        metavar="N",
        dest="max_depth",
        help="certify against a stream-depth bound of N",
    )
    analyze.add_argument(
        "--max-formula-size",
        type=_positive_int,
        metavar="N",
        dest="max_formula_size",
        help="fail if the certified σ bound exceeds N",
    )
    analyze.set_defaults(func=_cmd_analyze)

    stats = sub.add_parser("stats", help="stream statistics")
    stats.add_argument("file", nargs="?", help="XML file (default: stdin)")
    stats.set_defaults(func=_cmd_stats)

    bench = sub.add_parser(
        "bench",
        help="run the pinned benchmark smoke subset and emit the "
        "schema-versioned trajectory JSON (see docs/performance.md)",
    )
    bench.add_argument(
        "--smoke",
        action="store_true",
        help="run the pinned smoke subset (currently the only mode)",
    )
    bench.add_argument(
        "--json",
        action="store_true",
        help="emit the result as JSON on stdout",
    )
    bench.add_argument(
        "--output",
        metavar="FILE",
        help="also write the result JSON to FILE (CI uploads this)",
    )
    bench.add_argument(
        "--baseline",
        metavar="PATH",
        help="compare against a BENCH_<n>.json (or a directory holding "
        "the committed trajectory); exit nonzero on regression",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="relative throughput-loss band for --baseline (default: "
        "repro.bench.compare's 0.15)",
    )
    bench.add_argument(
        "--workload",
        action="append",
        dest="workloads",
        metavar="NAME",
        help="run only the named smoke workload(s)",
    )
    bench.add_argument(
        "--no-memory",
        action="store_true",
        dest="no_memory",
        help="skip tracemalloc peak measurement",
    )
    bench.set_defaults(func=_cmd_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``spex`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FATAL


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
