"""Adversarial document generators for untrusted-stream hardening.

These are the hostile counterparts of :mod:`repro.workloads.generators`:
documents crafted to blow up a naive streaming evaluator — entity
amplification, pathological nesting, enormous fan-out, giant text runs.
Each generator is deterministic for its arguments, so soak failures
replay exactly.  The event-level generators stay lazy (no adversarial
corpus ever materializes a bomb in memory); the raw-text generators
(:func:`billion_laughs`) return XML *source*, because entity expansion is
a parser-level attack that cannot be expressed as events.

The corresponding defenses:

* :func:`billion_laughs` → :class:`~repro.xmlstream.parser.ParserLimits`
  declaration-time amplification guard (``INPUT001``/``INPUT002``);
* :func:`pathological_nesting` → ``ResourceLimits.max_depth``;
* :func:`wide_fanout` → ``ResourceLimits.max_events_per_document`` and
  the serving layer's deadlines;
* :func:`giant_text` → ``ParserLimits.max_text_length`` (``INPUT003``).
"""

from __future__ import annotations

from typing import Iterator

from ..xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)


def billion_laughs(depth: int = 8, fanout: int = 10, label: str = "lolz") -> str:
    """Raw billion-laughs XML: ``fanout**depth`` entity amplification.

    A few hundred input bytes whose single entity reference expands to
    ``3 * fanout**depth`` characters.  Returns source text, to be fed to
    the parser with :class:`~repro.xmlstream.parser.ParserLimits` armed.
    """
    if depth < 1 or fanout < 1:
        raise ValueError("depth and fanout must be positive")
    lines = ["<?xml version=\"1.0\"?>", f"<!DOCTYPE {label} ["]
    lines.append("<!ENTITY e0 \"lol\">")
    for level in range(1, depth + 1):
        refs = f"&e{level - 1};" * fanout
        lines.append(f"<!ENTITY e{level} \"{refs}\">")
    lines.append("]>")
    lines.append(f"<{label}>&e{depth};</{label}>")
    return "\n".join(lines)


def pathological_nesting(
    depth: int = 100_000, label: str = "d", leaf_text: str | None = "x"
) -> Iterator[Event]:
    """One chain nested ``depth`` levels deep (a depth bomb).

    ``2·depth`` events of stream, but per-transducer stacks — and any
    recursive consumer — grow linearly with ``depth``; only
    ``ResourceLimits.max_depth`` keeps the d-bound of Theorem IV.2
    meaningful against it.
    """
    if depth < 1:
        raise ValueError("depth must be positive")
    yield StartDocument()
    for _ in range(depth):
        yield StartElement(label)
    if leaf_text is not None:
        yield Text(leaf_text)
    for _ in range(depth):
        yield EndElement(label)
    yield EndDocument()


def wide_fanout(
    children: int = 1_000_000,
    label: str = "row",
    root: str = "table",
    text: str | None = None,
) -> Iterator[Event]:
    """One flat element with ``children`` children (an event flood).

    Depth stays 2, so the ``d``-bound is useless here — the attack is on
    *throughput* budgets: per-document event ceilings and wall-clock
    deadlines are the defenses.
    """
    if children < 1:
        raise ValueError("children must be positive")
    yield StartDocument()
    yield StartElement(root)
    for _ in range(children):
        yield StartElement(label)
        if text is not None:
            yield Text(text)
        yield EndElement(label)
    yield EndElement(root)
    yield EndDocument()


def giant_text(
    length: int = 64 * 1024 * 1024,
    chunk: int = 64 * 1024,
    label: str = "blob",
) -> Iterator[Event]:
    """A single element holding one contiguous ``length``-character run.

    Emitted in ``chunk``-sized :class:`~repro.xmlstream.events.Text`
    events — exactly how a SAX parser would deliver it — so the
    defense under test is the *contiguous-run* accounting of
    ``ParserLimits.max_text_length``, not any single event's size.
    """
    if length < 1 or chunk < 1:
        raise ValueError("length and chunk must be positive")
    yield StartDocument()
    yield StartElement(label)
    remaining = length
    block = "x" * min(chunk, length)
    while remaining > 0:
        take = min(chunk, remaining)
        yield Text(block[:take])
        remaining -= take
    yield EndElement(label)
    yield EndDocument()


def adversarial_corpus(scale: int = 1) -> dict[str, object]:
    """The named adversarial document set, sized by ``scale``.

    Returns ``name -> document``, where a document is either raw XML
    text (``billion_laughs``) or a *callable* returning a fresh lazy
    event iterator — callables, so one corpus can feed many trials
    without replaying exhausted generators.  Sized modestly by default
    (CI-friendly); raise ``scale`` for stress runs.
    """
    if scale < 1:
        raise ValueError("scale must be positive")
    return {
        "billion_laughs": billion_laughs(depth=6 + scale, fanout=10),
        "pathological_nesting": lambda: pathological_nesting(depth=1000 * scale),
        "wide_fanout": lambda: wide_fanout(children=5000 * scale),
        "giant_text": lambda: giant_text(length=scale * 8 * 1024 * 1024),
    }
