"""``python -m repro.workloads`` — materialize datasets to XML files.

The generators are lazy event streams; this CLI serializes them so the
datasets can be fed to other tools (or inspected)::

    python -m repro.workloads mondial --countries 50 -o mondial.xml
    python -m repro.workloads wordnet --nouns 1000          # to stdout
    python -m repro.workloads dmoz-structure --topics 500
    python -m repro.workloads xmark --scale 20
    python -m repro.workloads random --elements 5000 --depth 6
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, Iterator

from ..xmlstream.events import Event
from ..xmlstream.serializer import write_events
from . import dmoz_content, dmoz_structure, mondial, wordnet, xmark
from .generators import random_tree


def _build_stream(args: argparse.Namespace) -> Iterator[Event]:
    if args.dataset == "mondial":
        return mondial(seed=args.seed, countries=args.countries)
    if args.dataset == "wordnet":
        return wordnet(seed=args.seed, nouns=args.nouns)
    if args.dataset == "dmoz-structure":
        return dmoz_structure(seed=args.seed, topics=args.topics)
    if args.dataset == "dmoz-content":
        return dmoz_content(seed=args.seed, topics=args.topics)
    if args.dataset == "xmark":
        return xmark(seed=args.seed, scale=args.scale)
    return random_tree(seed=args.seed, elements=args.elements, max_depth=args.depth)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Materialize a synthetic dataset as an XML file.",
    )
    parser.add_argument("-o", "--output", help="output file (default: stdout)")
    parser.add_argument("--seed", type=int, default=7, help="RNG seed")
    parser.add_argument(
        "--indent", action="store_true", help="pretty-print (larger output)"
    )
    sub = parser.add_subparsers(dest="dataset", required=True)

    m = sub.add_parser("mondial", help="MONDIAL-like geography (depth 5)")
    m.add_argument("--countries", type=int, default=500)

    w = sub.add_parser("wordnet", help="WordNet-like lexical RDF (depth 3)")
    w.add_argument("--nouns", type=int, default=48000)

    ds = sub.add_parser("dmoz-structure", help="DMOZ-like structure RDF")
    ds.add_argument("--topics", type=int, default=120_000)

    dc = sub.add_parser("dmoz-content", help="DMOZ-like content RDF")
    dc.add_argument("--topics", type=int, default=240_000)

    x = sub.add_parser("xmark", help="XMark-like auction site (depth 7)")
    x.add_argument("--scale", type=int, default=100)

    r = sub.add_parser("random", help="random tree")
    r.add_argument("--elements", type=int, default=10_000)
    r.add_argument("--depth", type=int, default=6)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    stream = _build_stream(args)
    indent = "  " if args.indent else None

    def emit(out: IO[str]) -> None:
        write_events(stream, out, indent=indent)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            emit(handle)
    else:
        emit(sys.stdout)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
