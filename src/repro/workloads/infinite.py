"""Unbounded, application-generated streams.

The paper's prototype "was tested also against application-generated
infinite streams and proved stable in cases where the depth of the tree
conveyed in the stream is bounded."  These generators model such sources:
a stock-exchange ticker and a sensor feed, both emitting well-formed
message elements forever under one never-closing root.

Because the root never closes, the document is never complete — which is
exactly the regime where progressive output matters: results must be
emitted from the infinite suffixless prefix alone.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator

from ..xmlstream.events import EndElement, Event, StartDocument, StartElement, Text

#: Queries used by the infinite-stream example and tests.  ``alerted``
#: qualifies the wildcard closure itself (prices under *any* element
#: carrying an alert), so no selective qualifier-free prefix exists —
#: the planner's full-network lane, kept here so the corpus exercises
#: all three execution lanes.
TICKER_QUERIES = {
    "all_trades": "_*.trade.price",
    "alerted": "_*[alert].price",
    "flagged": "_*.trade[alert].price",
}


def stock_ticker(
    seed: int = 7,
    symbols: tuple[str, ...] = ("ACME", "GLOBEX", "INITECH"),
    limit: int | None = None,
) -> Iterator[Event]:
    """An endless ``<feed>`` of ``<trade>`` messages.

    Each trade carries symbol, price, and — for ≈10% of trades — an
    ``<alert/>`` marker (exercising qualifiers on a live stream).

    Args:
        seed: RNG seed.
        symbols: ticker symbols to rotate through.
        limit: when given, stop after this many trades (the stream stays
            *unterminated*: no closing ``</feed>`` or ``</$>`` is ever
            emitted, like a cut network connection).
    """
    rng = random.Random(seed)
    yield StartDocument()
    yield StartElement("feed")
    counter = itertools.count()
    for index in counter:
        if limit is not None and index >= limit:
            return
        yield StartElement("trade")
        yield StartElement("symbol")
        yield Text(rng.choice(symbols))
        yield EndElement("symbol")
        if rng.random() < 0.1:
            yield StartElement("alert")
            yield EndElement("alert")
        yield StartElement("price")
        yield Text(f"{rng.uniform(10, 500):.2f}")
        yield EndElement("price")
        yield EndElement("trade")


def sensor_feed(seed: int = 7, sensors: int = 4, limit: int | None = None) -> Iterator[Event]:
    """An endless measurement feed with per-sensor readings."""
    rng = random.Random(seed)
    yield StartDocument()
    yield StartElement("measurements")
    count = 0
    while limit is None or count < limit:
        count += 1
        yield StartElement("reading")
        yield StartElement("sensor")
        yield Text(f"s{rng.randrange(sensors)}")
        yield EndElement("sensor")
        yield StartElement("value")
        yield Text(f"{rng.gauss(20, 5):.3f}")
        yield EndElement("value")
        if rng.random() < 0.05:
            yield StartElement("fault")
            yield EndElement("fault")
        yield EndElement("reading")
