"""Synthetic workloads reproducing the paper's datasets and query classes.

Each dataset module exports a seeded generator and its ``QUERIES`` dict —
the four query classes of Sec. VI:

1. simple structural queries (no nesting in results);
2. structural qualifiers creating *future conditions*;
3. structural queries creating *nested results*;
4. structural qualifiers creating *past conditions*.
"""

from .adversarial import (
    adversarial_corpus,
    billion_laughs,
    giant_text,
    pathological_nesting,
    wide_fanout,
)
from .dmoz import dmoz_content, dmoz_structure
from .dmoz import QUERIES as DMOZ_QUERIES
from .generators import (
    deep_chain,
    nested_closure_workload,
    random_tree,
    sdi_subscriptions,
    text_document,
    wide_flat,
)
from .infinite import TICKER_QUERIES, sensor_feed, stock_ticker
from .mondial import QUERIES as MONDIAL_QUERIES
from .mondial import mondial
from .treebank import QUERIES as TREEBANK_QUERIES
from .treebank import treebank
from .wordnet import QUERIES as WORDNET_QUERIES
from .wordnet import wordnet
from .xmark import QUERIES as XMARK_QUERIES
from .xmark import xmark


def query_corpus() -> dict[str, str]:
    """The full workload query corpus, keyed ``dataset/number``.

    Aggregates every dataset's ``QUERIES`` dict into one deterministic
    mapping — the corpus the static analyzer (and the CI ``spex analyze``
    gate) must pass cleanly.
    """
    datasets = {
        "dmoz": DMOZ_QUERIES,
        "mondial": MONDIAL_QUERIES,
        "ticker": TICKER_QUERIES,
        "treebank": TREEBANK_QUERIES,
        "wordnet": WORDNET_QUERIES,
        "xmark": XMARK_QUERIES,
    }
    return {
        f"{dataset}/{number}": text
        for dataset, queries in sorted(datasets.items())
        for number, text in sorted(queries.items(), key=lambda kv: str(kv[0]))
    }


__all__ = [
    "DMOZ_QUERIES",
    "MONDIAL_QUERIES",
    "TICKER_QUERIES",
    "TREEBANK_QUERIES",
    "WORDNET_QUERIES",
    "XMARK_QUERIES",
    "adversarial_corpus",
    "billion_laughs",
    "deep_chain",
    "dmoz_content",
    "dmoz_structure",
    "giant_text",
    "mondial",
    "nested_closure_workload",
    "pathological_nesting",
    "query_corpus",
    "random_tree",
    "sdi_subscriptions",
    "sensor_feed",
    "stock_ticker",
    "text_document",
    "treebank",
    "wide_fanout",
    "wide_flat",
    "wordnet",
    "xmark",
]
