"""WordNet-like lexical database generator.

The paper's medium-sized dataset: an excerpt of the WordNet RDF
representation (9.5 MB, 207 899 elements, maximum depth 3) — flat and
highly repetitive.  The structural profile:

    rdf
      Noun*          (synset records; ≈90% carry at least one wordForm)
        wordForm*
        lexID
        gloss?

Scales with ``nouns``; defaults approximate the paper's element count.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..xmlstream.events import EndDocument, EndElement, Event, StartDocument, StartElement

#: Query classes 1-4 of Sec. VI for this dataset.
QUERIES = {
    1: "_*.Noun.wordForm",
    2: "_*.Noun[wordForm].lexID",
    3: "_*._",
    4: "_*.Noun[wordForm].gloss",
}


def wordnet(seed: int = 7, nouns: int = 48000) -> Iterator[Event]:
    """Generate a WordNet-like stream (flat, repetitive, depth 3).

    Args:
        seed: RNG seed.
        nouns: number of ``Noun`` records; the default yields roughly the
            paper's 208k elements.
    """
    rng = random.Random(seed)

    def leaf(label: str) -> Iterator[Event]:
        yield StartElement(label)
        yield EndElement(label)

    yield StartDocument()
    yield StartElement("rdf")
    for _ in range(nouns):
        yield StartElement("Noun")
        if rng.random() < 0.9:
            for _ in range(rng.randint(1, 3)):
                yield from leaf("wordForm")
        yield from leaf("lexID")
        if rng.random() < 0.5:
            yield from leaf("gloss")
        yield EndElement("Noun")
    yield EndElement("rdf")
    yield EndDocument()
