"""Generic synthetic document generators.

All generators are seeded and yield event streams lazily, so arbitrarily
large (or unbounded) workloads never materialize in memory — the property
the paper's experiments rely on.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from ..xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)


def sdi_subscriptions(
    count: int,
    seed: int = 99,
    labels: Sequence[str] = (
        "country",
        "province",
        "city",
        "name",
        "population",
        "religions",
    ),
) -> dict[str, str]:
    """A seeded SDI/XFilter-style subscription family.

    Generates ``count`` rpeq subscriptions over ``labels``, alternating
    descendant-chain (``_*.a.b``) and qualifier (``_*.a[b]``) shapes —
    the two query classes the paper's multi-query experiments stress.
    Deterministic in ``(count, seed, labels)``, so benchmark series and
    shard-scaling soaks can grow the subscription set reproducibly.
    """
    rng = random.Random(seed)
    queries: dict[str, str] = {}
    for index in range(count):
        a, b = rng.choice(labels), rng.choice(labels)
        queries[f"s{index}"] = f"_*.{a}.{b}" if index % 2 else f"_*.{a}[{b}]"
    return queries


def random_tree(
    seed: int,
    elements: int,
    max_depth: int = 6,
    labels: Sequence[str] = ("a", "b", "c", "d", "e"),
    branch_up: float = 0.45,
) -> Iterator[Event]:
    """A random tree stream with approximately ``elements`` elements.

    Generated as a random walk over the open-element stack: at each step,
    either open a new child (if below ``max_depth``) or close the current
    element.  ``branch_up`` tunes bushiness versus depth.

    Args:
        seed: RNG seed; identical arguments give identical streams.
        elements: number of element nodes to emit.
        max_depth: maximum tree level (the paper's ``d``).
        labels: label vocabulary.
        branch_up: probability of closing the current element when both
            opening and closing are possible.
    """
    rng = random.Random(seed)
    yield StartDocument()
    depth = 0
    stack: list[str] = []
    emitted = 0
    while emitted < elements:
        can_open = depth < max_depth
        can_close = depth > 0
        if can_open and (not can_close or rng.random() > branch_up):
            label = rng.choice(labels)
            stack.append(label)
            depth += 1
            emitted += 1
            yield StartElement(label)
        else:
            depth -= 1
            yield EndElement(stack.pop())
    while stack:
        yield EndElement(stack.pop())
    yield EndDocument()


def deep_chain(depth: int, label: str = "a", leaf_label: str | None = None) -> Iterator[Event]:
    """A single chain ``<a><a>...<leaf/>...</a></a>`` of the given depth.

    The degenerate workload for the depth-memory experiment (E5): stream
    size is ``2·depth`` messages while the depth equals ``depth``.
    """
    yield StartDocument()
    for _ in range(depth):
        yield StartElement(label)
    if leaf_label is not None:
        yield StartElement(leaf_label)
        yield EndElement(leaf_label)
    for _ in range(depth):
        yield EndElement(label)
    yield EndDocument()


def wide_flat(elements: int, label: str = "item", child_label: str | None = "v") -> Iterator[Event]:
    """A flat document: ``elements`` siblings, optionally one child each.

    The shape of the RDF-style datasets (WordNet, DMOZ): huge, depth 2-3.
    """
    yield StartDocument()
    yield StartElement("root")
    for _ in range(elements):
        yield StartElement(label)
        if child_label is not None:
            yield StartElement(child_label)
            yield EndElement(child_label)
        yield EndElement(label)
    yield EndElement("root")
    yield EndDocument()


def nested_closure_workload(
    repetitions: int, nest_depth: int, labels: Sequence[str] = ("a", "b")
) -> Iterator[Event]:
    """Nested same-label blocks that stress closure-scope disjunctions.

    Produces ``repetitions`` top-level blocks, each a nest of
    ``nest_depth`` ``a`` elements with one ``b`` leaf — the structure that
    makes wildcard-closure qualifiers build the large formulas of the
    paper's Sec. V analysis (experiment E6).
    """
    a_label, b_label = labels[0], labels[1]
    yield StartDocument()
    yield StartElement("root")
    for _ in range(repetitions):
        for _ in range(nest_depth):
            yield StartElement(a_label)
        yield StartElement(b_label)
        yield EndElement(b_label)
        for _ in range(nest_depth):
            yield EndElement(a_label)
    yield EndElement("root")
    yield EndDocument()


def text_document(
    seed: int, elements: int, words: Sequence[str] = ("alpha", "beta", "gamma")
) -> Iterator[Event]:
    """A random tree interleaved with text content, for round-trip tests."""
    rng = random.Random(seed)
    base = random_tree(seed, elements)
    for event in base:
        yield event
        if isinstance(event, StartElement) and rng.random() < 0.4:
            yield Text(rng.choice(words))
