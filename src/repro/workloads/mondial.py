"""MONDIAL-like geographic database generator.

The paper's small, highly structured dataset: the MONDIAL world geography
database (1.2 MB, 24 184 elements, maximum depth 5).  This generator
reproduces its structural profile — the real content is irrelevant to the
experiments, which only exercise structure:

    mondial
      country*                 (qualified by [province] in class-2/4 queries)
        name
        population
        province?              (≈70% of countries)
          name
          city*
            name
            population
        city*                  (city directly under country, no province)
        religions*

Element counts scale with the ``countries`` parameter; the defaults land
close to the paper's 24k elements at depth 5.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..xmlstream.events import EndDocument, EndElement, Event, StartDocument, StartElement

#: Query classes 1-4 of Sec. VI for this dataset (paper's own examples).
QUERIES = {
    1: "_*.province.city",
    2: "_*.country[province].name",
    3: "_*._",
    4: "_*.country[province].religions",
}


def mondial(seed: int = 7, countries: int = 500) -> Iterator[Event]:
    """Generate a MONDIAL-like stream.

    Args:
        seed: RNG seed (structure is deterministic per seed).
        countries: number of country elements; the default approximates
            the paper's element count (≈24k elements).
    """
    rng = random.Random(seed)

    def leaf(label: str) -> Iterator[Event]:
        yield StartElement(label)
        yield EndElement(label)

    yield StartDocument()
    yield StartElement("mondial")
    for _ in range(countries):
        yield StartElement("country")
        yield from leaf("name")
        yield from leaf("population")
        if rng.random() < 0.7:
            for _ in range(rng.randint(1, 8)):
                yield StartElement("province")
                yield from leaf("name")
                for _ in range(rng.randint(1, 6)):
                    yield StartElement("city")
                    yield from leaf("name")
                    yield from leaf("population")
                    yield EndElement("city")
                yield EndElement("province")
        for _ in range(rng.randint(0, 3)):
            yield StartElement("city")
            yield from leaf("name")
            yield from leaf("population")
            yield EndElement("city")
        for _ in range(rng.randint(0, 4)):
            yield from leaf("religions")
        yield EndElement("country")
    yield EndElement("mondial")
    yield EndDocument()
