"""DMOZ-like Open Directory generator.

The paper's large/very-large datasets: the DMOZ structure RDF (300 MB,
3 940 716 elements) and content RDF (1 GB, 13 233 278 elements), both
flat (maximum depth 3).  Figure 15 evaluates SPEX alone on them — the
in-memory processors cannot hold them at all.

This generator preserves the shape (flat Topic records with Title /
editor / newsGroup / link children) and the structure:content size ratio
(≈1 : 3.36 in elements); absolute sizes are scaled to laptop budgets via
the ``topics`` parameter and can be raised arbitrarily — the stream is
lazy, so SPEX's memory stays flat no matter the value.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..xmlstream.events import EndDocument, EndElement, Event, StartDocument, StartElement

#: Query classes 1-4 of Sec. VI for this dataset.
QUERIES = {
    1: "_*.Topic.Title",
    2: "_*.Topic[editor].Title",
    3: "_*._",
    4: "_*.Topic[editor].newsGroup",
}

#: paper's element counts, for scale-factor reporting
PAPER_STRUCTURE_ELEMENTS = 3_940_716
PAPER_CONTENT_ELEMENTS = 13_233_278


def _topic(rng: random.Random, rich: bool) -> Iterator[Event]:
    def leaf(label: str) -> Iterator[Event]:
        yield StartElement(label)
        yield EndElement(label)

    yield StartElement("Topic")
    yield from leaf("Title")
    if rng.random() < 0.25:
        yield from leaf("editor")
    if rng.random() < 0.3:
        yield from leaf("newsGroup")
    if rich:
        for _ in range(rng.randint(1, 6)):
            yield from leaf("link")
        if rng.random() < 0.6:
            yield from leaf("description")
    yield EndElement("Topic")


def dmoz_structure(seed: int = 7, topics: int = 120_000) -> Iterator[Event]:
    """The structure file: lean Topic records (defaults ≈ 420k elements)."""
    rng = random.Random(seed)
    yield StartDocument()
    yield StartElement("RDF")
    for _ in range(topics):
        yield from _topic(rng, rich=False)
    yield EndElement("RDF")
    yield EndDocument()


def dmoz_content(seed: int = 7, topics: int = 240_000) -> Iterator[Event]:
    """The content file: richer Topic records (defaults ≈ 1.4M elements).

    The defaults preserve the paper's structure:content element ratio of
    roughly 1 : 3.4.
    """
    rng = random.Random(seed)
    yield StartDocument()
    yield StartElement("RDF")
    for _ in range(topics):
        yield from _topic(rng, rich=True)
    yield EndElement("RDF")
    yield EndDocument()
