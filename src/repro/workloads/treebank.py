"""Treebank-like deeply recursive linguistic dataset.

The Penn Treebank's XML rendering was the classic *deep* dataset of the
paper's era: parse trees nest grammatical categories to depth ~36, which
stresses exactly the resource the paper's analysis bounds — the depth
stacks — and the closure-scope disjunctions of Sec. V.

The generator emulates that shape with a small phrase-structure grammar
(S -> NP VP, recursive clauses/PPs), seeded and scalable.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..xmlstream.events import EndDocument, EndElement, Event, StartDocument, StartElement

#: Queries probing depth behaviour (closure chains, deep qualifiers).
QUERIES = {
    1: "_*.NP.NN",
    2: "_*.S[VP].NP",
    3: "_*._",
    4: "_*.VP[PP].VB",
    "chains": "_*.S._*.S._*.NP",
    "recursive": "S+",
}


def _terminal(rng: random.Random, label: str) -> Iterator[Event]:
    yield StartElement(label)
    yield EndElement(label)


def _np(rng: random.Random, depth: int, budget: int) -> Iterator[Event]:
    yield StartElement("NP")
    if rng.random() < 0.3:
        yield from _terminal(rng, "DT")
    yield from _terminal(rng, "NN")
    if depth < budget and rng.random() < 0.35:
        yield from _pp(rng, depth + 1, budget)
    yield EndElement("NP")


def _pp(rng: random.Random, depth: int, budget: int) -> Iterator[Event]:
    yield StartElement("PP")
    yield from _terminal(rng, "IN")
    yield from _np(rng, depth + 1, budget)
    yield EndElement("PP")


def _vp(rng: random.Random, depth: int, budget: int) -> Iterator[Event]:
    yield StartElement("VP")
    yield from _terminal(rng, "VB")
    if rng.random() < 0.7:
        yield from _np(rng, depth + 1, budget)
    if depth < budget and rng.random() < 0.3:
        yield from _pp(rng, depth + 1, budget)
    if depth < budget and rng.random() < 0.25:
        # recursive clausal complement: "said that S"
        yield from _sentence(rng, depth + 1, budget)
    yield EndElement("VP")


def _sentence(rng: random.Random, depth: int, budget: int) -> Iterator[Event]:
    yield StartElement("S")
    yield from _np(rng, depth + 1, budget)
    yield from _vp(rng, depth + 1, budget)
    yield EndElement("S")


def treebank(seed: int = 7, sentences: int = 500, max_depth: int = 30) -> Iterator[Event]:
    """Generate a Treebank-like corpus.

    Args:
        seed: RNG seed.
        sentences: number of top-level sentences.
        max_depth: recursion budget (real Treebank reaches ~36).
    """
    rng = random.Random(seed)
    yield StartDocument()
    yield StartElement("corpus")
    for _ in range(sentences):
        yield from _sentence(rng, 2, max_depth)
    yield EndElement("corpus")
    yield EndDocument()
