"""XMark-like auction-site generator.

XMark (Schmidt et al., VLDB 2002) was the standard XML benchmark of the
paper's era: an auction site with regions, items, people and auctions —
deeper and much more heterogeneous than the paper's three datasets.  The
paper does not evaluate on XMark, but a deeper mixed-structure workload
rounds out the benchmark suite (it exercises closure scopes and nested
qualifiers harder than the flat RDF sets do).

Structural profile (element depth up to 7):

    site
      regions > (africa|asia|europe|namerica)* > item*
        item: location, name, payment?, description > text*,
              mailbox > mail* > (from, to, text)
      people > person*: name, emailaddress, watches > watch*
      open_auctions > open_auction*: initial, bidder* > (date, increase),
              current, itemref
      closed_auctions > closed_auction*: price, date, itemref
"""

from __future__ import annotations

import random
from typing import Iterator

from ..xmlstream.events import EndDocument, EndElement, Event, StartDocument, StartElement

#: Benchmark queries in the four Sec. VI classes, plus two stress
#: queries exercising deep closure and nested qualifiers.
QUERIES = {
    1: "_*.item.name",
    2: "_*.item[mailbox].name",
    3: "_*._",
    4: "_*.open_auction[bidder].current",
    "deep": "_*.mailbox._*.text",
    "nested": "_*.item[mailbox[mail[from]]].name",
}

_REGIONS = ("africa", "asia", "europe", "namerica")


def _leaf(label: str) -> Iterator[Event]:
    yield StartElement(label)
    yield EndElement(label)


def _item(rng: random.Random) -> Iterator[Event]:
    yield StartElement("item")
    yield from _leaf("location")
    yield from _leaf("name")
    if rng.random() < 0.5:
        yield from _leaf("payment")
    if rng.random() < 0.8:
        yield StartElement("description")
        for _ in range(rng.randint(1, 3)):
            yield from _leaf("text")
        yield EndElement("description")
    if rng.random() < 0.4:
        yield StartElement("mailbox")
        for _ in range(rng.randint(1, 3)):
            yield StartElement("mail")
            yield from _leaf("from")
            yield from _leaf("to")
            yield from _leaf("text")
            yield EndElement("mail")
        yield EndElement("mailbox")
    yield EndElement("item")


def _person(rng: random.Random) -> Iterator[Event]:
    yield StartElement("person")
    yield from _leaf("name")
    yield from _leaf("emailaddress")
    if rng.random() < 0.6:
        yield StartElement("watches")
        for _ in range(rng.randint(1, 4)):
            yield from _leaf("watch")
        yield EndElement("watches")
    yield EndElement("person")


def _open_auction(rng: random.Random) -> Iterator[Event]:
    yield StartElement("open_auction")
    yield from _leaf("initial")
    for _ in range(rng.randint(0, 5)):
        yield StartElement("bidder")
        yield from _leaf("date")
        yield from _leaf("increase")
        yield EndElement("bidder")
    yield from _leaf("current")
    yield from _leaf("itemref")
    yield EndElement("open_auction")


def _closed_auction(rng: random.Random) -> Iterator[Event]:
    yield StartElement("closed_auction")
    yield from _leaf("price")
    yield from _leaf("date")
    yield from _leaf("itemref")
    yield EndElement("closed_auction")


def xmark(seed: int = 7, scale: int = 100) -> Iterator[Event]:
    """Generate an XMark-like auction document.

    Args:
        seed: RNG seed.
        scale: number of items; people and auctions scale proportionally
            (roughly 20 elements per unit of scale).
    """
    rng = random.Random(seed)
    yield StartDocument()
    yield StartElement("site")
    yield StartElement("regions")
    per_region = max(1, scale // len(_REGIONS))
    for region in _REGIONS:
        yield StartElement(region)
        for _ in range(per_region):
            yield from _item(rng)
        yield EndElement(region)
    yield EndElement("regions")
    yield StartElement("people")
    for _ in range(scale // 2):
        yield from _person(rng)
    yield EndElement("people")
    yield StartElement("open_auctions")
    for _ in range(scale // 2):
        yield from _open_auction(rng)
    yield EndElement("open_auctions")
    yield StartElement("closed_auctions")
    for _ in range(scale // 4):
        yield from _closed_auction(rng)
    yield EndElement("closed_auctions")
    yield EndElement("site")
    yield EndDocument()
