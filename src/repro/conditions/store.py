"""Condition-variable state tracking.

The output transducer must decide candidate formulas as qualifier
instances resolve.  A :class:`ConditionStore` records, per variable:

* *contributions* — formulas implying the variable, sent by the
  variable-determinant transducer each time the qualifier path matches
  (``{c, true}`` in the paper's simple protocol; a residual formula over
  inner-qualifier variables in the nested-qualifier generalization);
* whether the variable's scope is *closed* — sent by the variable-creator
  transducer when the element that created the instance ends (the paper's
  ``{c, false}`` message): no further contributions can arrive.

A variable's value is::

    true     as soon as any contribution evaluates true,
    false    once closed with every contribution evaluated false,
    unknown  otherwise.

Contribution formulas may reference variables of *inner* qualifiers.  The
store propagates determinations eagerly along a reverse-dependency index,
so :meth:`contribute` and :meth:`close` return every variable that became
determined as a consequence — the output transducer uses that list to
re-evaluate exactly the candidates that could have changed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..errors import EngineError
from .formula import (
    FALSE,
    TRUE,
    Formula,
    Var,
    evaluate,
    formula_from_obj,
    formula_to_obj,
    substitute,
)


class VariableAllocator:
    """Deterministic per-engine allocator of condition variables.

    Each engine owns one allocator so variable uids are reproducible run
    to run (uid order equals activation order, i.e. document order).
    """

    def __init__(self) -> None:
        self._next = 1

    def fresh(self, qualifier: str) -> Var:
        """Allocate the next variable for a qualifier instance."""
        var = Var(self._next, qualifier)
        self._next += 1
        return var

    def snapshot(self) -> int:
        """Next uid to allocate — resuming must not reuse earlier uids."""
        return self._next

    def restore(self, state: int) -> None:
        """Continue allocating from a checkpointed counter."""
        self._next = int(state)


@dataclass
class _VarState:
    contributions: list[Formula] = field(default_factory=list)
    closed: bool = False
    value: bool | None = None


class ConditionStore:
    """Tracks determination state for every live condition variable.

    The store is also a memory-accounting hook: :attr:`peak_live_variables`
    feeds the depth-memory experiment (E5).
    """

    def __init__(self) -> None:
        self._states: dict[Var, _VarState] = {}
        self._dependents: dict[Var, set[Var]] = {}
        self._listeners: list = []
        self._retainers: list = []
        self._release_pending: set[Var] = set()
        self._live = 0
        self.peak_live_variables = 0
        self.total_variables = 0
        self.total_contributions = 0

    def subscribe(self, listener) -> None:
        """Register a callback invoked with every newly-determined batch.

        Multi-sink networks (conjunctive queries, shared multi-query
        networks) share one store; the *first* sink processing a
        determination message resolves the variable globally, so the
        return values of :meth:`contribute`/:meth:`close` reach only that
        sink.  Listeners broadcast the batch to every sink instead.
        """
        self._listeners.append(listener)

    def add_retainer(self, retainer) -> None:
        """Register a predicate blocking release of variables in use.

        ``retainer(var) -> bool`` returns ``True`` while some consumer
        (e.g. another sink's candidate watchers) still needs the
        variable's state.
        """
        self._retainers.append(retainer)

    def defer_release(self, var: Var) -> None:
        """Schedule a release attempt for the end of the current event.

        A sink seeing a ``Close`` may not release immediately: other
        nodes later in the topological order still process the same
        batch and may create candidates referencing the variable.  At
        end-of-event (:meth:`end_of_event`, called by the network) every
        node has seen the batch, so release is safe.
        """
        self._release_pending.add(var)

    def end_of_event(self) -> None:
        """Release every deferred variable that became releasable."""
        if not self._release_pending:
            return
        released = [var for var in self._release_pending if self.maybe_release(var)]
        self._release_pending.difference_update(released)

    @property
    def live_variables(self) -> int:
        """Number of variables currently undetermined."""
        return self._live

    def register(self, var: Var) -> None:
        """Declare a freshly created variable (undetermined, open)."""
        if var in self._states:
            raise EngineError(f"variable {var} registered twice")
        self._states[var] = _VarState()
        self.total_variables += 1
        self._live += 1
        if self._live > self.peak_live_variables:
            self.peak_live_variables = self._live

    def contribute(self, var: Var, formula: Formula) -> list[Var]:
        """Record evidence: ``formula`` implies ``var``.

        In the paper's non-nested protocol the formula is always ``TRUE``
        (the message ``{c, true}``).

        Returns:
            Variables that became determined, in cascade order.
        """
        state = self._states.get(var)
        if state is None:
            # Late duplicate (a join without dedup can replay messages
            # for an already-released variable): semantically a no-op.
            return []
        if state.value is not None:
            # First determination wins; late evidence (a second match
            # after the instance is already proven) is a no-op.
            return []
        self.total_contributions += 1
        # Substitute already-determined variables away immediately, so a
        # stored contribution only ever references undetermined variables
        # (this is what makes releasing determined variables safe).
        residual = substitute(formula, self.value)
        if residual is TRUE:
            return self._determine(var, True)
        if residual is FALSE:
            # Evidence already dead (its inner variables resolved false);
            # only a close can still decide the variable.
            return []
        state.contributions.append(residual)
        for dependency in residual.variables():
            self._dependents.setdefault(dependency, set()).add(var)
        return []

    def close(self, var: Var) -> list[Var]:
        """Mark a variable's scope ended: no further contributions.

        The paper's ``{c, false}`` message.

        Returns:
            Variables that became determined, in cascade order.
        """
        state = self._states.get(var)
        if state is None:
            # Late duplicate close of a released variable: no-op.
            return []
        if state.closed:
            return []
        state.closed = True
        if state.value is not None:
            return []
        return self._refresh(var)

    def is_closed(self, var: Var) -> bool:
        """Whether the variable's scope has ended (state may be released)."""
        state = self._states.get(var)
        return state is None or state.closed

    def maybe_release(self, var: Var) -> bool:
        """Drop a variable's state once nothing can reference it again.

        Safe when the variable is determined, its scope is closed (its
        ``Close`` message has traversed the whole network, so no message
        still in flight and no transducer stack entry can mention it) and
        no pending contribution formula depends on it.  The output
        transducer calls this after clearing its own candidate watchers,
        which keeps the store's footprint bounded on unbounded streams.
        """
        state = self._states.get(var)
        if state is None:
            return True
        if state.value is None or not state.closed:
            return False
        if self._dependents.get(var):
            return False
        if any(retainer(var) for retainer in self._retainers):
            return False
        del self._states[var]
        self._dependents.pop(var, None)
        return True

    def value(self, var: Var) -> bool | None:
        """Current three-valued knowledge about a variable."""
        state = self._states.get(var)
        if state is None:
            raise EngineError(f"unknown condition variable {var}")
        return state.value

    def evaluate(self, formula: Formula) -> bool | None:
        """Three-valued evaluation of a formula under current knowledge."""
        return evaluate(formula, self.value)

    def _require(self, var: Var) -> _VarState:
        state = self._states.get(var)
        if state is None:
            raise EngineError(f"unknown condition variable {var}")
        return state

    def _determine(self, var: Var, value: bool) -> list[Var]:
        """Fix a variable's value and cascade through dependents."""
        determined: list[Var] = []
        queue: deque[tuple[Var, bool]] = deque([(var, value)])
        while queue:
            current, current_value = queue.popleft()
            state = self._states[current]
            if state.value is not None:
                continue
            state.value = current_value
            self._deregister(current, state)
            self._live -= 1
            determined.append(current)
            for dependent in self._dependents.pop(current, ()):
                dependent_state = self._states.get(dependent)
                if dependent_state is None or dependent_state.value is not None:
                    continue
                # Rewrite the dependent's contributions so they stop
                # referencing the just-determined variable.
                new_value = self._rewrite(dependent, dependent_state)
                if new_value is not None:
                    queue.append((dependent, new_value))
        if determined:
            for listener in self._listeners:
                listener(determined)
        return determined

    def _deregister(self, var: Var, state: _VarState) -> None:
        """Remove ``var`` from the dependent sets of everything its
        contributions reference, then drop the contributions."""
        for contribution in state.contributions:
            for reference in contribution.variables():
                dependents = self._dependents.get(reference)
                if dependents is not None:
                    dependents.discard(var)
                    if not dependents:
                        del self._dependents[reference]
        state.contributions.clear()

    def _rewrite(self, var: Var, state: _VarState) -> bool | None:
        """Substitute determined variables out of stored contributions.

        Returns a value when the rewrite decides the variable (some
        contribution became ``TRUE``, or the variable is closed with all
        contributions dead), else ``None``.  Dependent-set registrations
        are kept in sync with the rewritten formulas.
        """
        old_refs: set[Var] = set()
        new_refs: set[Var] = set()
        remaining: list[Formula] = []
        decided: bool | None = None
        for contribution in state.contributions:
            old_refs |= contribution.variables()
            if decided is not None:
                continue
            residual = substitute(contribution, self.value)
            if residual is TRUE:
                decided = True
                continue
            if residual is FALSE:
                continue
            remaining.append(residual)
            new_refs |= residual.variables()
        if decided is True:
            remaining = []
            new_refs = set()
        state.contributions = remaining
        for reference in old_refs - new_refs:
            dependents = self._dependents.get(reference)
            if dependents is not None:
                dependents.discard(var)
                if not dependents:
                    del self._dependents[reference]
        for reference in new_refs - old_refs:
            self._dependents.setdefault(reference, set()).add(var)
        if decided is not None:
            return decided
        if state.closed and not remaining:
            return False
        return None

    def _refresh(self, var: Var) -> list[Var]:
        state = self._states[var]
        value = self._derive(state)
        if value is None:
            return []
        return self._determine(var, value)

    def _derive(self, state: _VarState) -> bool | None:
        """Derive a value from contributions + closed flag, or ``None``."""
        any_unknown = False
        for contribution in state.contributions:
            value = evaluate(contribution, self.value)
            if value is True:
                return True
            if value is None:
                any_unknown = True
        if state.closed and not any_unknown:
            return False
        return None

    # ------------------------------------------------------------------
    # checkpointing

    def snapshot(self) -> dict:
        """JSON-serializable snapshot of all determination state.

        Listeners and retainers are *not* captured: they are runtime
        wiring re-established when the network is compiled, not data.
        The reverse-dependency index is derivable from the contribution
        formulas and is rebuilt on :meth:`restore`.
        """
        return {
            "states": [
                [
                    formula_to_obj(var),
                    [formula_to_obj(c) for c in state.contributions],
                    state.closed,
                    state.value,
                ]
                for var, state in self._states.items()
            ],
            "release_pending": [
                formula_to_obj(var) for var in self._release_pending
            ],
            "live": self._live,
            "peak_live_variables": self.peak_live_variables,
            "total_variables": self.total_variables,
            "total_contributions": self.total_contributions,
        }

    def restore(self, data: dict) -> None:
        """Replace all determination state with a checkpointed snapshot.

        Keeps the listener/retainer wiring installed at compile time
        untouched — restore only swaps the data underneath it.
        """
        self._states = {}
        self._dependents = {}
        for var_obj, contributions, closed, value in data["states"]:
            var = formula_from_obj(var_obj)
            state = _VarState(
                contributions=[formula_from_obj(c) for c in contributions],
                closed=bool(closed),
                value=value,
            )
            self._states[var] = state
            for contribution in state.contributions:
                for reference in contribution.variables():
                    self._dependents.setdefault(reference, set()).add(var)
        self._release_pending = {
            formula_from_obj(obj) for obj in data["release_pending"]
        }
        self._live = int(data["live"])
        self.peak_live_variables = int(data["peak_live_variables"])
        self.total_variables = int(data["total_variables"])
        self.total_contributions = int(data["total_contributions"])
