"""Condition variables and boolean formulas for qualifier tracking."""

from .formula import (
    FALSE,
    TRUE,
    And,
    Formula,
    Or,
    Var,
    conj,
    disj,
    dnf,
    evaluate,
    fresh_var,
    restrict,
    substitute,
)
from .store import ConditionStore, VariableAllocator

__all__ = [
    "And",
    "ConditionStore",
    "FALSE",
    "Formula",
    "Or",
    "TRUE",
    "Var",
    "VariableAllocator",
    "conj",
    "disj",
    "dnf",
    "evaluate",
    "fresh_var",
    "restrict",
    "substitute",
]
