"""Boolean condition formulas.

Activation messages in a SPEX network carry *condition formulas* —
conjunctions and disjunctions of *condition variables*, one variable per
qualifier instance (paper, Def. 2).  Results are emitted once their
formula is determined ``true`` and dropped once it is ``false``.

Formulas here are immutable, hash-consed-by-construction trees with the
normalizations the paper relies on:

* constant absorption (``f ∧ true == f``, ``f ∨ true == true``, …),
* flattening of nested ∧/∧ and ∨/∨,
* duplicate-conjunct elimination ("a formula contains at most one
  reference to a condition variable", Sec. III.4).

Three-valued evaluation (:func:`evaluate`) is deliberately separate from
the representation: the same formula object is re-evaluated as variable
knowledge accumulates in a :class:`~repro.conditions.store.ConditionStore`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator

_counter = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Formula:
    """Base class of condition formulas.

    ``size`` is the number of variable occurrences — the paper's formula
    size σ.  Constants have size 1 so the qualifier-free fragment reports
    ``σ == 1`` exactly as in Sec. V.  It is a plain attribute, not a
    property: the transducer hot loop reads it once per activation
    message, and connectives precompute theirs at construction instead
    of re-walking the tree on every read.
    """

    #: the paper's σ; shadowed by a precomputed slot on ``And``/``Or``
    size = 1

    def variables(self) -> frozenset["Var"]:
        """All condition variables occurring in the formula."""
        return frozenset()


@dataclass(frozen=True, slots=True)
class _True(Formula):
    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True, slots=True)
class _False(Formula):
    def __str__(self) -> str:
        return "false"


#: The constant formulas.  There is exactly one instance of each, so
#: identity comparison (``f is TRUE``) is safe and used throughout.
TRUE = _True()
FALSE = _False()


@dataclass(frozen=True, slots=True)
class Var(Formula):
    """A condition variable — one instance of one qualifier.

    Attributes:
        uid: globally unique id (allocation order, which is also document
            order of the activations that created the instances).
        qualifier: id of the qualifier (the variable-creator transducer)
            this instance belongs to; the variable-filter transducer keys
            on this.
    """

    uid: int
    qualifier: str

    def variables(self) -> frozenset["Var"]:
        return frozenset((self,))

    def __hash__(self) -> int:
        # Uids are allocation-unique per engine, so they are the whole
        # identity; hashing the (uid, qualifier) tuple the dataclass
        # would generate costs a tuple build per lookup, and Var is the
        # hottest dict key in the engine (condition-store states,
        # watcher sets, dependent sets).
        return self.uid

    def __str__(self) -> str:
        return f"{self.qualifier}{self.uid}"


@dataclass(frozen=True, slots=True)
class And(Formula):
    """Conjunction of two or more sub-formulas (flattened, deduplicated)."""

    terms: tuple[Formula, ...]
    #: precomputed σ; excluded from eq/hash (derivable from ``terms``)
    size: int = field(init=False, repr=False, compare=False, default=1)

    def __post_init__(self) -> None:
        object.__setattr__(self, "size", sum(term.size for term in self.terms))

    def variables(self) -> frozenset[Var]:
        result: frozenset[Var] = frozenset()
        for term in self.terms:
            result |= term.variables()
        return result

    def __str__(self) -> str:
        return "(" + " ^ ".join(str(term) for term in self.terms) + ")"


@dataclass(frozen=True, slots=True)
class Or(Formula):
    """Disjunction of two or more sub-formulas (flattened, deduplicated)."""

    terms: tuple[Formula, ...]
    #: precomputed σ; excluded from eq/hash (derivable from ``terms``)
    size: int = field(init=False, repr=False, compare=False, default=1)

    def __post_init__(self) -> None:
        object.__setattr__(self, "size", sum(term.size for term in self.terms))

    def variables(self) -> frozenset[Var]:
        result: frozenset[Var] = frozenset()
        for term in self.terms:
            result |= term.variables()
        return result

    def __str__(self) -> str:
        return "(" + " v ".join(str(term) for term in self.terms) + ")"


def fresh_var(qualifier: str) -> Var:
    """Allocate a new condition variable for a qualifier instance."""
    return Var(next(_counter), qualifier)


def _flatten(terms: tuple[Formula, ...], cls: type) -> Iterator[Formula]:
    for term in terms:
        if isinstance(term, cls):
            yield from term.terms
        else:
            yield term


def conj(*terms: Formula) -> Formula:
    """Normalized conjunction.

    Applies constant absorption, flattening and duplicate elimination; the
    result is ``TRUE`` for an empty conjunction.
    """
    seen: dict[Formula, None] = {}
    for term in _flatten(terms, And):
        if term is FALSE:
            return FALSE
        if term is TRUE:
            continue
        seen.setdefault(term, None)
    unique = tuple(seen)
    if not unique:
        return TRUE
    if len(unique) == 1:
        return unique[0]
    return And(unique)


def disj(*terms: Formula) -> Formula:
    """Normalized disjunction (dual of :func:`conj`); empty gives ``FALSE``."""
    seen: dict[Formula, None] = {}
    for term in _flatten(terms, Or):
        if term is TRUE:
            return TRUE
        if term is FALSE:
            continue
        seen.setdefault(term, None)
    unique = tuple(seen)
    if not unique:
        return FALSE
    if len(unique) == 1:
        return unique[0]
    return Or(unique)


class FormulaMemo:
    """Bounded memo for the binary ``conj``/``disj`` normalizations.

    Under closures the same σ-bounded scope formulas are merged over and
    over (every matching start tag disjoins the parent scope with the
    pending activation), so most normalizations are replays of earlier
    ones.  The memo maps an *identity* key ``(op, id(a), id(b))`` to the
    normalized result.

    Correctness notes:

    * Keying by identity is sound because normalization is pure and the
      operands are immutable; it is *fast* because it skips structural
      hashing of formula trees.
    * Each table entry keeps strong references to its operands.  This is
      load-bearing, not a leak: if an operand were collected, CPython
      could reuse its ``id`` for a brand-new formula and the memo would
      serve a stale result.  Boundedness comes from the capacity cap.
    * Eviction is FIFO (dict insertion order), one entry per overflow —
      O(1) and good enough given replays cluster tightly in time.

    The memo never changes results, only who computes them; the
    differential suite runs with it on and off.  Hit/miss/eviction
    counters are exposed for tests and perf forensics.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_table")

    #: default entry cap; ~300 bytes/entry measured under tracemalloc
    #: (key tuple + entry tuple + transitively retained operands), so
    #: the default bounds the memo at ~300 KB per network.  Replays
    #: cluster tightly in time, so a deep table buys little; the
    #: network clears the memo at every document end anyway.
    DEFAULT_CAPACITY = 1024

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("memo capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._table: dict[
            tuple[int, int, int], tuple[Formula, Formula, Formula]
        ] = {}

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        self._table.clear()

    def _merge(self, op: int, a: Formula, b: Formula) -> Formula:
        table = self._table
        key = (op, id(a), id(b))
        entry = table.get(key)
        if entry is not None:
            self.hits += 1
            return entry[2]
        self.misses += 1
        result = conj(a, b) if op == 0 else disj(a, b)
        if len(table) >= self.capacity:
            del table[next(iter(table))]
            self.evictions += 1
        table[key] = (a, b, result)
        return result

    def conj(self, a: Formula, b: Formula) -> Formula:
        """Memoized binary :func:`conj`."""
        return self._merge(0, a, b)

    def disj(self, a: Formula, b: Formula) -> Formula:
        """Memoized binary :func:`disj`."""
        return self._merge(1, a, b)


def formula_to_obj(formula: Formula) -> object:
    """Stable, JSON-serializable form of a formula (checkpoint codec).

    The encoding is positional and versioned implicitly by the checkpoint
    format: constants become bare strings, a variable becomes
    ``["v", uid, qualifier]``, connectives become ``["^"| "v-or", ...]``
    with their terms in construction order (term order is semantically
    irrelevant but keeping it makes round-trips byte-identical).
    """
    if formula is TRUE:
        return "t"
    if formula is FALSE:
        return "f"
    if isinstance(formula, Var):
        return ["v", formula.uid, formula.qualifier]
    if isinstance(formula, And):
        return ["and", *(formula_to_obj(term) for term in formula.terms)]
    if isinstance(formula, Or):
        return ["or", *(formula_to_obj(term) for term in formula.terms)]
    raise TypeError(f"not a formula: {formula!r}")


def formula_from_obj(obj: object) -> Formula:
    """Inverse of :func:`formula_to_obj`.

    Constants decode to the :data:`TRUE`/:data:`FALSE` singletons so
    downstream identity checks (``f is TRUE``) keep working after a
    checkpoint round-trip.
    """
    if obj == "t":
        return TRUE
    if obj == "f":
        return FALSE
    if isinstance(obj, (list, tuple)) and obj:
        tag = obj[0]
        if tag == "v":
            return Var(int(obj[1]), str(obj[2]))
        if tag == "and":
            return And(tuple(formula_from_obj(term) for term in obj[1:]))
        if tag == "or":
            return Or(tuple(formula_from_obj(term) for term in obj[1:]))
    raise ValueError(f"not an encoded formula: {obj!r}")


def evaluate(formula: Formula, lookup: Callable[[Var], bool | None]) -> bool | None:
    """Three-valued evaluation under partial variable knowledge.

    Args:
        formula: the formula to evaluate.
        lookup: maps a variable to ``True``/``False`` when determined,
            ``None`` while undetermined.

    Returns:
        ``True``/``False`` once the formula's value is forced by the known
        variables, ``None`` otherwise.  Short-circuits: a conjunction with
        one known-``False`` term is ``False`` regardless of unknowns —
        this is what lets the output transducer drop or emit candidates
        early (the paper's "progressive" behaviour).
    """
    if formula is TRUE:
        return True
    if formula is FALSE:
        return False
    if isinstance(formula, Var):
        return lookup(formula)
    if isinstance(formula, And):
        saw_unknown = False
        for term in formula.terms:
            value = evaluate(term, lookup)
            if value is False:
                return False
            if value is None:
                saw_unknown = True
        return None if saw_unknown else True
    if isinstance(formula, Or):
        saw_unknown = False
        for term in formula.terms:
            value = evaluate(term, lookup)
            if value is True:
                return True
            if value is None:
                saw_unknown = True
        return None if saw_unknown else False
    raise TypeError(f"not a formula: {formula!r}")


def substitute(formula: Formula, lookup: Callable[[Var], bool | None]) -> Formula:
    """Residual formula after substituting determined variables.

    The paper's ``update(c, v, β)`` stack operation: determined variables
    are replaced by their constants and the formula re-normalized, which
    keeps stored formulas from outgrowing the bound σ.
    """
    if isinstance(formula, Var):
        value = lookup(formula)
        if value is None:
            return formula
        return TRUE if value else FALSE
    if isinstance(formula, And):
        return conj(*(substitute(term, lookup) for term in formula.terms))
    if isinstance(formula, Or):
        return disj(*(substitute(term, lookup) for term in formula.terms))
    return formula


def restrict(formula: Formula, keep: Callable[[Var], bool]) -> Formula:
    """Project a formula onto a subset of its variables.

    Used by the variable-filter transducer: variables outside the
    qualifier's own sub-network are *existentially ignored* — dropped from
    conjunctions (treated as satisfiable) — so what remains mentions only
    the qualifier's instances.  A conjunction of only-foreign variables
    reduces to ``TRUE``.
    """
    if isinstance(formula, Var):
        return formula if keep(formula) else TRUE
    if isinstance(formula, And):
        return conj(*(restrict(term, keep) for term in formula.terms))
    if isinstance(formula, Or):
        # Dual care: a disjunct reduced to TRUE (all-foreign) makes the
        # disjunction TRUE, which is the correct existential reading — the
        # activation did reach this point along that disjunct.
        return disj(*(restrict(term, keep) for term in formula.terms))
    return formula


def dnf(formula: Formula) -> list[frozenset[Var]]:
    """Disjunctive normal form as a list of variable conjunctions.

    Only defined for constant-free formulas over variables (after
    normalization, constants only appear as the whole formula).  ``TRUE``
    yields ``[frozenset()]`` (one empty conjunct) and ``FALSE`` yields
    ``[]``.  The variable-determinant transducer uses this to split one
    activation formula into per-instance contributions.
    """
    if formula is TRUE:
        return [frozenset()]
    if formula is FALSE:
        return []
    if isinstance(formula, Var):
        return [frozenset((formula,))]
    if isinstance(formula, Or):
        result: list[frozenset[Var]] = []
        seen: set[frozenset[Var]] = set()
        for term in formula.terms:
            for conjunct in dnf(term):
                if conjunct not in seen:
                    seen.add(conjunct)
                    result.append(conjunct)
        return result
    if isinstance(formula, And):
        product: list[frozenset[Var]] = [frozenset()]
        for term in formula.terms:
            expansions = dnf(term)
            product = [base | extra for base in product for extra in expansions]
        deduped: list[frozenset[Var]] = []
        seen = set()
        for conjunct in product:
            if conjunct not in seen:
                seen.add(conjunct)
                deduped.append(conjunct)
        return deduped
    raise TypeError(f"not a formula: {formula!r}")
