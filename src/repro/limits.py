"""Resource guards for evaluation over untrusted streams.

The paper's complexity results (Theorems VI.1/VI.2) make SPEX's resource
profile *predictable*: memory is bounded by stream depth ``d`` times
formula size ``σ`` plus whatever the output transducer must buffer.  On a
shared service those same quantities are attack surface — a
billion-laughs-style depth bomb inflates every per-transducer stack, a
qualifier-heavy query over adversarial input inflates σ, and a stream
that never determines its conditions forces the output transducer to
buffer without end.  :class:`ResourceLimits` turns each predictable
quantity into an enforceable ceiling.

Enforcement points:

* :meth:`repro.core.network.Network.process_event` — ``max_depth``,
  ``max_events_per_document``, ``max_seconds_per_document`` and
  ``max_formula_size``;
* :class:`repro.core.output_tx.OutputTransducer` —
  ``max_buffered_events`` and ``max_pending_candidates``, either raising
  :class:`~repro.errors.ResourceLimitError` or, under the
  ``"drop_oldest"`` overflow policy, evicting the oldest undecided
  candidate so the run degrades (loses the oldest potential match)
  instead of dying.
"""

from __future__ import annotations

from dataclasses import dataclass


#: Overflow policies for the output transducer's buffers.
RAISE = "raise"
DROP_OLDEST = "drop_oldest"


@dataclass(frozen=True)
class ResourceLimits:
    """Ceilings on every unbounded resource of a streaming run.

    All limits default to ``None`` (unlimited), so ``ResourceLimits()``
    is a no-op and the hot path pays nothing unless a bound is set.

    Attributes:
        max_depth: maximum open-element nesting depth of the stream
            (``d`` in the paper's analysis); guards every per-transducer
            stack at once.
        max_formula_size: maximum condition-formula size (the paper's σ)
            observed by any transducer.
        max_buffered_events: ceiling on the output transducer's shared
            event log (the paper's ``S_OU``).
        max_pending_candidates: ceiling on undecided result candidates.
        max_events_per_document: per-document event budget; reset at
            every ``<$>``.
        max_seconds_per_document: per-document wall-clock budget; reset
            at every ``<$>``.
        on_buffer_overflow: ``"raise"`` (default) aborts the run with
            :class:`~repro.errors.ResourceLimitError`; ``"drop_oldest"``
            evicts the oldest pending candidate (and the log prefix only
            it needed), trading the oldest potential match for bounded
            memory.
    """

    max_depth: int | None = None
    max_formula_size: int | None = None
    max_buffered_events: int | None = None
    max_pending_candidates: int | None = None
    max_events_per_document: int | None = None
    max_seconds_per_document: float | None = None
    on_buffer_overflow: str = RAISE

    def __post_init__(self) -> None:
        for name in (
            "max_depth",
            "max_formula_size",
            "max_buffered_events",
            "max_pending_candidates",
            "max_events_per_document",
        ):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be positive, got {value}")
        if (
            self.max_seconds_per_document is not None
            and self.max_seconds_per_document <= 0
        ):
            raise ValueError("max_seconds_per_document must be positive")
        if self.on_buffer_overflow not in (RAISE, DROP_OLDEST):
            raise ValueError(
                f"on_buffer_overflow must be {RAISE!r} or {DROP_OLDEST!r}, "
                f"got {self.on_buffer_overflow!r}"
            )

    @property
    def unbounded(self) -> bool:
        """``True`` when no limit is set (the hot path can skip checks)."""
        return (
            self.max_depth is None
            and self.max_formula_size is None
            and self.max_buffered_events is None
            and self.max_pending_candidates is None
            and self.max_events_per_document is None
            and self.max_seconds_per_document is None
        )
