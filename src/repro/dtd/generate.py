"""Random generation of DTD-valid documents.

Closes the loop on the DTD substrate: documents sampled from a DTD are
accepted by the validator (property-tested), and any workload can be
described as a DTD instead of hand-writing a generator.  Generation is
seeded and streaming — recursive DTDs produce unbounded-depth trees, so
a depth budget caps recursion (repetitions and optional/recursive
particles collapse to their shortest form once the budget is hit).
"""

from __future__ import annotations

import random
from typing import Iterator

from ..errors import ReproError
from ..xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)
from .model import Choice, Dtd, ElementDecl, Model, Optional_, Repeat, Seq, Sym


class DocumentGenerator:
    """Samples valid documents from a DTD."""

    def __init__(
        self,
        dtd: Dtd,
        seed: int = 7,
        max_depth: int = 12,
        max_repeat: int = 3,
        text_probability: float = 0.3,
    ) -> None:
        """Create a generator.

        Args:
            dtd: the schema to sample from; every referenced element must
                be declared.
            seed: RNG seed (same seed, same document).
            max_depth: recursion budget; at the limit, repetitions emit
                their minimum and choices prefer non-recursive options.
            max_repeat: cap on ``*``/``+`` repetition counts.
            text_probability: chance of emitting text in mixed content.
        """
        undeclared = {
            name
            for decl in dtd.elements.values()
            if decl.model is not None
            for name in decl.model.symbols()
            if name not in dtd.elements
        }
        if undeclared:
            raise ReproError(
                f"cannot generate: DTD references undeclared elements "
                f"{sorted(undeclared)}"
            )
        self._check_terminating(dtd)
        self.dtd = dtd
        self.seed = seed
        self.max_depth = max_depth
        self.max_repeat = max_repeat
        self.text_probability = text_probability

    @staticmethod
    def _check_terminating(dtd: Dtd) -> None:
        """Reject DTDs whose minimal document is infinite.

        ``<!ELEMENT tree (tree)>`` admits no finite document at all; a
        least-fixpoint over minimal subtree sizes detects this.
        """
        size: dict[str, float] = {name: float("inf") for name in dtd.elements}

        def minimal(model: Model | None, empty: bool) -> float:
            if empty or model is None:
                return 0.0
            if isinstance(model, Sym):
                return 1.0 + size[model.name]
            if isinstance(model, Seq):
                return sum(minimal(part, False) for part in model.parts)
            if isinstance(model, Choice):
                return min(
                    (minimal(option, False) for option in model.options),
                    default=0.0,
                )
            if isinstance(model, Repeat):
                return minimal(model.inner, False) if model.at_least_one else 0.0
            if isinstance(model, Optional_):
                return 0.0
            raise TypeError(f"not a content model: {model!r}")

        for _ in range(len(dtd.elements) + 1):
            changed = False
            for name, decl in dtd.elements.items():
                new_size = minimal(decl.model, decl.empty)
                if new_size < size[name]:
                    size[name] = new_size
                    changed = True
            if not changed:
                break
        dead = sorted(name for name, value in size.items() if value == float("inf"))
        if dtd.root in dead:
            raise ReproError(
                f"cannot generate: elements {dead} admit no finite "
                f"content (mandatory recursion)"
            )

    def events(self, seed: int | None = None) -> Iterator[Event]:
        """One random valid document as an event stream."""
        rng = random.Random(self.seed if seed is None else seed)
        yield StartDocument()
        yield from self._element(rng, self.dtd.root, depth=1)
        yield EndDocument()

    # ------------------------------------------------------------------

    def _element(self, rng: random.Random, name: str, depth: int) -> Iterator[Event]:
        decl = self.dtd.elements[name]
        yield StartElement(name)
        if decl.mixed and rng.random() < self.text_probability:
            yield Text(f"t{rng.randrange(1000)}")
        if decl.model is not None and not decl.empty:
            for child in self._expand(rng, decl.model, depth):
                yield from self._element(rng, child, depth + 1)
                if decl.mixed and rng.random() < self.text_probability:
                    yield Text(f"t{rng.randrange(1000)}")
        yield EndElement(name)

    def _expand(self, rng: random.Random, model: Model, depth: int) -> list[str]:
        """A child-label word in the content model's language."""
        exhausted = depth >= self.max_depth
        if isinstance(model, Sym):
            return [model.name]
        if isinstance(model, Seq):
            word: list[str] = []
            for part in model.parts:
                word.extend(self._expand(rng, part, depth))
            return word
        if isinstance(model, Choice):
            if not model.options:
                return []
            option = rng.choice(model.options)
            if exhausted:
                # Prefer the shallowest option to wind recursion down.
                option = min(model.options, key=self._min_height)
            return self._expand(rng, option, depth)
        if isinstance(model, Repeat):
            minimum = 1 if model.at_least_one else 0
            count = minimum if exhausted else rng.randint(minimum, self.max_repeat)
            word = []
            for _ in range(count):
                word.extend(self._expand(rng, model.inner, depth))
            return word
        if isinstance(model, Optional_):
            if exhausted or rng.random() < 0.5:
                return []
            return self._expand(rng, model.inner, depth)
        raise TypeError(f"not a content model: {model!r}")

    def _min_height(self, model: Model) -> int:
        """Rough height of the shortest word: used to break recursion."""
        if isinstance(model, Sym):
            return 1
        if isinstance(model, Seq):
            return sum(self._min_height(part) for part in model.parts)
        if isinstance(model, Choice):
            return min(
                (self._min_height(option) for option in model.options), default=0
            )
        if isinstance(model, Repeat):
            return self._min_height(model.inner) if model.at_least_one else 0
        if isinstance(model, Optional_):
            return 0
        return 0


def generate_document(dtd: Dtd, seed: int = 7, **options) -> Iterator[Event]:
    """Convenience: one random valid document for ``dtd``."""
    return DocumentGenerator(dtd, seed=seed, **options).events()
