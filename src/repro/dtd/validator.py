"""Streaming DTD validation.

The validator is the pushdown machine of the Segoufin/Vianu analysis:
one stack entry per open element holding the state set of a lazily
determinized automaton for that element's content model.  Memory is
``O(depth x |DTD|)`` — independent of the stream length — and the pass
is single and incremental, so validation composes with querying::

    validator = DtdValidator(parse_dtd(DTD_TEXT))
    for match in SpexEngine(query).run(validator.stream(events)):
        ...

Validation failures raise :class:`DtdValidationError` with the offending
element and a description of what the content model expected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import ReproError
from ..xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)
from .model import Choice, Dtd, ElementDecl, Model, Optional_, Repeat, Seq, Sym


class DtdValidationError(ReproError):
    """The stream violates the DTD."""


@dataclass
class _Nfa:
    start: int
    accept: int
    transitions: dict[int, list[tuple[str, int]]] = field(default_factory=dict)
    epsilon: dict[int, list[int]] = field(default_factory=dict)


class _ModelAutomaton:
    """Lazy-DFA matcher for one element's content model."""

    def __init__(self, model: Model) -> None:
        self._counter = 0
        self._nfa = _Nfa(0, 0)
        self._nfa.start, self._nfa.accept = self._build(model)
        self._closure_cache: dict[frozenset[int], frozenset[int]] = {}
        self._step_cache: dict[tuple[frozenset[int], str], frozenset[int]] = {}
        self.initial = self._closure(frozenset((self._nfa.start,)))

    def _fresh(self) -> int:
        self._counter += 1
        return self._counter

    def _build(self, model: Model) -> tuple[int, int]:
        if isinstance(model, Sym):
            start, accept = self._fresh(), self._fresh()
            self._nfa.transitions.setdefault(start, []).append((model.name, accept))
            return start, accept
        if isinstance(model, Seq):
            start = current = self._fresh()
            for part in model.parts:
                part_start, part_accept = self._build(part)
                self._nfa.epsilon.setdefault(current, []).append(part_start)
                current = part_accept
            return start, current
        if isinstance(model, Choice):
            start, accept = self._fresh(), self._fresh()
            for option in model.options:
                option_start, option_accept = self._build(option)
                self._nfa.epsilon.setdefault(start, []).append(option_start)
                self._nfa.epsilon.setdefault(option_accept, []).append(accept)
            return start, accept
        if isinstance(model, Repeat):
            start, accept = self._fresh(), self._fresh()
            inner_start, inner_accept = self._build(model.inner)
            self._nfa.epsilon.setdefault(start, []).append(inner_start)
            self._nfa.epsilon.setdefault(inner_accept, []).append(accept)
            self._nfa.epsilon.setdefault(inner_accept, []).append(inner_start)
            if not model.at_least_one:
                self._nfa.epsilon.setdefault(start, []).append(accept)
            return start, accept
        if isinstance(model, Optional_):
            start, accept = self._build(model.inner)
            wrapped_start, wrapped_accept = self._fresh(), self._fresh()
            self._nfa.epsilon.setdefault(wrapped_start, []).append(start)
            self._nfa.epsilon.setdefault(accept, []).append(wrapped_accept)
            self._nfa.epsilon.setdefault(wrapped_start, []).append(wrapped_accept)
            return wrapped_start, wrapped_accept
        raise TypeError(f"not a content model: {model!r}")

    def _closure(self, states: frozenset[int]) -> frozenset[int]:
        cached = self._closure_cache.get(states)
        if cached is not None:
            return cached
        result = set(states)
        stack = list(states)
        while stack:
            state = stack.pop()
            for target in self._nfa.epsilon.get(state, ()):
                if target not in result:
                    result.add(target)
                    stack.append(target)
        frozen = frozenset(result)
        self._closure_cache[states] = frozen
        return frozen

    def step(self, states: frozenset[int], label: str) -> frozenset[int]:
        key = (states, label)
        cached = self._step_cache.get(key)
        if cached is not None:
            return cached
        moved = frozenset(
            target
            for state in states
            for symbol, target in self._nfa.transitions.get(state, ())
            if symbol == label
        )
        result = self._closure(moved)
        self._step_cache[key] = result
        return result

    def accepting(self, states: frozenset[int]) -> bool:
        return self._nfa.accept in states


@dataclass
class _Frame:
    label: str
    decl: ElementDecl | None
    states: frozenset[int] | None  # None for ANY / EMPTY / undeclared


class DtdValidator:
    """Validates event streams against a DTD, as a pass-through filter."""

    def __init__(self, dtd: Dtd, strict_undeclared: bool = True) -> None:
        """Create a validator.

        Args:
            dtd: the document type definition.
            strict_undeclared: reject elements the DTD does not declare;
                when ``False`` they are treated as ``ANY``.
        """
        self.dtd = dtd
        self.strict_undeclared = strict_undeclared
        self._automata: dict[str, _ModelAutomaton] = {}
        for name, decl in dtd.elements.items():
            if decl.model is not None:
                self._automata[name] = _ModelAutomaton(decl.model)

    # ------------------------------------------------------------------

    def stream(self, events: Iterable[Event]) -> Iterator[Event]:
        """Yield events unchanged, validating as they pass.

        Raises:
            DtdValidationError: at the first violation.
        """
        stack: list[_Frame] = []
        saw_root = False
        for event in events:
            if isinstance(event, StartDocument):
                pass
            elif isinstance(event, StartElement):
                if not stack:
                    if saw_root:
                        raise DtdValidationError(
                            f"multiple root elements; second is <{event.label}>"
                        )
                    if event.label != self.dtd.root:
                        raise DtdValidationError(
                            f"root element is <{event.label}>, DTD expects "
                            f"<{self.dtd.root}>"
                        )
                    saw_root = True
                self._enter_child(stack, event.label)
                stack.append(self._open_frame(event.label))
            elif isinstance(event, EndElement):
                frame = stack.pop()
                self._check_complete(frame)
            elif isinstance(event, Text):
                if event.content.strip():
                    self._check_text_allowed(stack)
            elif isinstance(event, EndDocument):
                if not saw_root:
                    raise DtdValidationError("document has no root element")
            yield event

    def is_valid(self, events: Iterable[Event]) -> bool:
        """Consume a stream and report validity without raising."""
        try:
            for _ in self.stream(events):
                pass
        except DtdValidationError:
            return False
        return True

    # ------------------------------------------------------------------

    def _open_frame(self, label: str) -> _Frame:
        decl = self.dtd.declaration(label)
        if decl is None:
            if self.strict_undeclared:
                raise DtdValidationError(f"element <{label}> is not declared")
            return _Frame(label, None, None)
        automaton = self._automata.get(label)
        states = automaton.initial if automaton is not None else None
        return _Frame(label, decl, states)

    def _enter_child(self, stack: list[_Frame], label: str) -> None:
        if not stack:
            return
        frame = stack[-1]
        if frame.decl is None:
            return  # undeclared (lenient mode) behaves like ANY
        if frame.decl.empty:
            raise DtdValidationError(
                f"<{frame.label}> is declared EMPTY but contains <{label}>"
            )
        if frame.states is None:
            return  # ANY
        automaton = self._automata[frame.label]
        next_states = automaton.step(frame.states, label)
        if not next_states:
            raise DtdValidationError(
                f"<{label}> not allowed here inside <{frame.label}> "
                f"(content model: {frame.decl.model})"
            )
        frame.states = next_states

    def _check_complete(self, frame: _Frame) -> None:
        if frame.decl is None or frame.states is None:
            return
        automaton = self._automata[frame.label]
        if not automaton.accepting(frame.states):
            raise DtdValidationError(
                f"<{frame.label}> ended before its content model was "
                f"satisfied (model: {frame.decl.model})"
            )

    def _check_text_allowed(self, stack: list[_Frame]) -> None:
        if not stack:
            raise DtdValidationError("text outside the root element")
        frame = stack[-1]
        if frame.decl is None:
            return
        if frame.decl.empty:
            raise DtdValidationError(
                f"<{frame.label}> is declared EMPTY but contains text"
            )
        if not frame.decl.mixed:
            raise DtdValidationError(
                f"<{frame.label}> has element content; text is not allowed"
            )
