"""Streaming DTD validation (the Segoufin/Vianu related work, Sec. VIII).

Validation runs as a pass-through filter over event streams with memory
bounded by the document depth, and composes with querying::

    from repro.dtd import DtdValidator, parse_dtd

    validator = DtdValidator(parse_dtd(DTD_TEXT))
    engine.run(validator.stream(events))
"""

from .analysis import SchemaAnalyzer
from .generate import DocumentGenerator, generate_document
from .model import Choice, Dtd, ElementDecl, Model, Optional_, Repeat, Seq, Sym
from .parser import parse_dtd
from .validator import DtdValidationError, DtdValidator

__all__ = [
    "Choice",
    "DocumentGenerator",
    "Dtd",
    "DtdValidationError",
    "DtdValidator",
    "ElementDecl",
    "Model",
    "Optional_",
    "Repeat",
    "SchemaAnalyzer",
    "Seq",
    "Sym",
    "generate_document",
    "parse_dtd",
]
