"""Schema-aware query analysis: can a query ever match under a DTD?

Multi-query systems of the paper's era (YFilter and friends) prune
subscriptions that a document schema makes unsatisfiable before any
document arrives.  This module provides that check for rpeq against the
DTD substrate: a product construction between the query's NFA and the
DTD's parent→child relation.

The DTD is abstracted to its *label graph* (which child labels can occur
under which element type), ignoring ordering and cardinality.  That makes
the analysis an **over-approximation of satisfiability**: a query
reported unsatisfiable is genuinely dead under every document valid for
the DTD (sound pruning); a query reported satisfiable might still never
match (the content model's ordering could forbid the required siblings).

Qualifier conditions are checked recursively from the element types at
which the guard applies.  ``following``/``preceding`` steps are treated
conservatively (assumed satisfiable) — they reach outside the subtree the
label graph models.
"""

from __future__ import annotations

from ..baselines.nfa import Nfa, compile_nfa
from ..errors import UnsupportedFeatureError
from ..rpeq.ast import Rpeq
from .model import Dtd

#: pseudo element type for the document root ``$``
_ROOT_TYPE = "$"


class SchemaAnalyzer:
    """Satisfiability of rpeq queries under a DTD's label graph."""

    def __init__(self, dtd: Dtd) -> None:
        self.dtd = dtd
        self._children: dict[str, frozenset[str]] = {}
        all_names = frozenset(dtd.elements)
        for name, decl in dtd.elements.items():
            if decl.empty:
                self._children[name] = frozenset()
            elif decl.model is None:
                # ANY: any declared element type may appear.
                self._children[name] = all_names
            else:
                self._children[name] = frozenset(decl.model.symbols()) & all_names
        self._children[_ROOT_TYPE] = frozenset((dtd.root,))
        self._condition_cache: dict[tuple[Rpeq, str], bool] = {}

    # ------------------------------------------------------------------

    def query_is_satisfiable(self, expr: Rpeq) -> bool:
        """Whether some DTD-valid document makes the query non-empty."""
        try:
            nfa = compile_nfa(expr, allow_qualifiers=True)
        except UnsupportedFeatureError:
            # following/preceding: outside the label-graph model.
            return True
        return self._satisfiable_from(nfa, _ROOT_TYPE)

    def prune(self, queries: dict[str, str | Rpeq]) -> dict[str, bool]:
        """Map each query id to its satisfiability verdict."""
        from ..rpeq.parser import parse

        return {
            query_id: self.query_is_satisfiable(
                parse(query) if isinstance(query, str) else query
            )
            for query_id, query in queries.items()
        }

    def reachable_types(self) -> set[str]:
        """Element types reachable from the root through the label graph."""
        seen: set[str] = set()
        frontier = [self.dtd.root]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._children.get(current, ()))
        return seen & set(self.dtd.elements)

    def dead_types(self) -> set[str]:
        """Declared element types no valid document can ever contain.

        Useful for DTD linting: declarations outside the root's reach are
        usually editing leftovers.
        """
        return set(self.dtd.elements) - self.reachable_types()

    def condition_satisfiable_somewhere(self, condition: Rpeq) -> bool:
        """Whether a qualifier condition can match from *any* reachable type.

        ``False`` means the condition is contradictory under the DTD: no
        element of any valid document satisfies it, so an enclosing
        ``E[F]`` is statically dead.  Used by the rpeq linter (``RPQ011``).
        """
        candidates = sorted(self.reachable_types()) + [_ROOT_TYPE]
        return any(
            self._condition_satisfiable(condition, element_type)
            for element_type in candidates
        )

    # ------------------------------------------------------------------

    def _satisfiable_from(self, nfa: Nfa, element_type: str) -> bool:
        """Reachability of the accept state in the (NFA x types) product."""
        start = self._guarded_closure(nfa, frozenset((nfa.start,)), element_type)
        frontier = [(state, element_type) for state in start]
        seen = set(frontier)
        for state, _type in frontier:
            if state == nfa.accept:
                return True
        while frontier:
            state, current_type = frontier.pop()
            for test, target in nfa.transitions.get(state, ()):
                for child in self._children.get(current_type, ()):
                    if not test.matches(child):
                        continue
                    for reached in self._guarded_closure(
                        nfa, frozenset((target,)), child
                    ):
                        if reached == nfa.accept:
                            return True
                        pair = (reached, child)
                        if pair not in seen:
                            seen.add(pair)
                            frontier.append(pair)
        return False

    def _guarded_closure(
        self, nfa: Nfa, states: frozenset[int], element_type: str
    ) -> frozenset[int]:
        """Epsilon closure, taking guarded edges only when the qualifier
        condition is itself satisfiable from ``element_type``."""
        result: set[int] = set()
        stack = list(states)
        while stack:
            state = stack.pop()
            if state in result:
                continue
            result.add(state)
            stack.extend(nfa.epsilon.get(state, ()))
            for condition, target in nfa.guarded_epsilon.get(state, ()):
                if target in result:
                    continue
                if self._condition_satisfiable(condition, element_type):
                    stack.append(target)
        return frozenset(result)

    def _condition_satisfiable(self, condition: Rpeq, element_type: str) -> bool:
        key = (condition, element_type)
        cached = self._condition_cache.get(key)
        if cached is not None:
            return cached
        # Break potential recursion optimistically (recursive DTDs).
        self._condition_cache[key] = True
        try:
            nfa = compile_nfa(condition, allow_qualifiers=True)
        except UnsupportedFeatureError:
            return True
        verdict = self._satisfiable_from(nfa, element_type)
        self._condition_cache[key] = verdict
        return verdict
