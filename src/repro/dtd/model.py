"""DTD content models.

The paper's related work (Sec. VIII) discusses validating XML streams
under memory constraints [Segoufin & Vianu, PODS 2002]: DTD validation
needs, in general, a pushdown automaton whose stack is bounded by the
document depth — the same resource profile as a SPEX transducer.  This
package provides that substrate: a DTD model, a parser for the classic
``<!ELEMENT ...>`` syntax, and a streaming validator.

A content model is a regular expression over *child element labels*:

    EMPTY                no content at all
    ANY                  anything (the trivial model)
    (#PCDATA)            text only
    (#PCDATA | a | b)*   mixed content
    (a, b?, (c | d)*)    element content (sequence / choice / repetition)

Unlike rpeq (whose closures apply to labels only), content models close
over arbitrary groups, so they get their own small AST here plus a
Thompson construction in :mod:`repro.dtd.validator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping


@dataclass(frozen=True, slots=True)
class Model:
    """Base class of content-model expressions."""

    def children(self) -> tuple["Model", ...]:
        return ()

    def symbols(self) -> set[str]:
        """All element names referenced by the model."""
        names: set[str] = set()
        stack: list[Model] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Sym):
                names.add(node.name)
            stack.extend(node.children())
        return names


@dataclass(frozen=True, slots=True)
class Sym(Model):
    """A child element name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Seq(Model):
    """Sequence ``(a, b, c)``."""

    parts: tuple[Model, ...]

    def children(self) -> tuple[Model, ...]:
        return self.parts

    def __str__(self) -> str:
        return "(" + ", ".join(map(str, self.parts)) + ")"


@dataclass(frozen=True, slots=True)
class Choice(Model):
    """Choice ``(a | b | c)``."""

    options: tuple[Model, ...]

    def children(self) -> tuple[Model, ...]:
        return self.options

    def __str__(self) -> str:
        return "(" + " | ".join(map(str, self.options)) + ")"


@dataclass(frozen=True, slots=True)
class Repeat(Model):
    """Repetition: ``expr*`` (min 0) or ``expr+`` (min 1)."""

    inner: Model
    at_least_one: bool = False

    def children(self) -> tuple[Model, ...]:
        return (self.inner,)

    def __str__(self) -> str:
        return f"{self.inner}{'+' if self.at_least_one else '*'}"


@dataclass(frozen=True, slots=True)
class Optional_(Model):
    """Optional ``expr?``."""

    inner: Model

    def children(self) -> tuple[Model, ...]:
        return (self.inner,)

    def __str__(self) -> str:
        return f"{self.inner}?"


@dataclass(frozen=True, slots=True)
class ElementDecl:
    """One ``<!ELEMENT name model>`` declaration.

    Attributes:
        name: the declared element.
        model: the content model over child labels; ``None`` encodes
            ``ANY`` (everything allowed, including text).
        empty: ``EMPTY`` content (no children, no text).
        mixed: text is allowed (``#PCDATA`` / mixed / ``ANY``).
    """

    name: str
    model: Model | None = None
    empty: bool = False
    mixed: bool = False


@dataclass
class Dtd:
    """A document type definition: a root name plus element declarations."""

    root: str
    elements: dict[str, ElementDecl] = field(default_factory=dict)

    def declaration(self, name: str) -> ElementDecl | None:
        return self.elements.get(name)

    def declared_names(self) -> set[str]:
        return set(self.elements)

    def is_recursive(self) -> bool:
        """Whether some element can (transitively) contain itself.

        Segoufin & Vianu: for *non-recursive* DTDs the document depth is
        bounded by the DTD, so validation is possible with a finite
        automaton; recursive DTDs genuinely need the pushdown.
        """
        graph: Mapping[str, set[str]] = {
            name: (decl.model.symbols() if decl.model is not None else set())
            for name, decl in self.elements.items()
        }
        state: dict[str, int] = {}

        def cyclic(node: str) -> bool:
            mark = state.get(node, 0)
            if mark == 1:
                return True
            if mark == 2:
                return False
            state[node] = 1
            for child in graph.get(node, ()):
                if cyclic(child):
                    return True
            state[node] = 2
            return False

        return any(cyclic(name) for name in graph)

    def depth_bound(self) -> int | None:
        """Maximum document depth, or ``None`` for recursive DTDs."""
        if self.is_recursive():
            return None
        graph = {
            name: (decl.model.symbols() if decl.model is not None else set())
            for name, decl in self.elements.items()
        }
        cache: dict[str, int] = {}

        def height(node: str) -> int:
            if node in cache:
                return cache[node]
            children = graph.get(node, set())
            cache[node] = 1 + max((height(child) for child in children), default=0)
            return cache[node]

        return height(self.root) if self.root in graph else 1
