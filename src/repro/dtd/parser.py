"""Parser for the classic DTD element-declaration syntax.

Supported input — a sequence of declarations, with or without the
``<!DOCTYPE root [ ... ]>`` wrapper::

    <!DOCTYPE site [
      <!ELEMENT site (regions, people)>
      <!ELEMENT regions (item*)>
      <!ELEMENT item (name, (payment | barter)?, description+)>
      <!ELEMENT name (#PCDATA)>
      <!ELEMENT description ANY>
      <!ELEMENT payment EMPTY>
      <!ATTLIST item id CDATA #REQUIRED>        <!-- skipped -->
    ]>

``<!ATTLIST>``, ``<!ENTITY>``, ``<!NOTATION>``, comments and parameter
entities are skipped (attributes are transparent to this library).
"""

from __future__ import annotations

import re

from ..errors import QuerySyntaxError
from .model import Choice, Dtd, ElementDecl, Model, Optional_, Repeat, Seq, Sym

_NAME = re.compile(r"[^\W\d][\w.\-]*", re.UNICODE)


class _Scanner:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def skip_space_and_comments(self) -> None:
        while self.pos < len(self.text):
            if self.text[self.pos].isspace():
                self.pos += 1
            elif self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos)
                if end < 0:
                    raise QuerySyntaxError("unterminated comment", position=self.pos)
                self.pos = end + 3
            else:
                return

    def eat(self, token: str) -> bool:
        self.skip_space_and_comments()
        if self.text.startswith(token, self.pos):
            self.pos += len(token)
            return True
        return False

    def expect(self, token: str) -> None:
        if not self.eat(token):
            raise QuerySyntaxError(f"expected {token!r} in DTD", position=self.pos)

    def name(self) -> str:
        self.skip_space_and_comments()
        match = _NAME.match(self.text, self.pos)
        if not match:
            raise QuerySyntaxError("expected a name in DTD", position=self.pos)
        self.pos = match.end()
        return match.group()

    def skip_until(self, token: str) -> None:
        end = self.text.find(token, self.pos)
        if end < 0:
            raise QuerySyntaxError(f"missing {token!r} in DTD", position=self.pos)
        self.pos = end + len(token)

    def at_end(self) -> bool:
        self.skip_space_and_comments()
        return self.pos >= len(self.text)


#: group-nesting bound; mirrors repro.rpeq.parser.MAX_NESTING
_MAX_NESTING = 200


def _parse_particle(scanner: _Scanner, depth: int = 0) -> Model:
    """One particle: name or parenthesized group, with ?/*/+ suffix."""
    if depth > _MAX_NESTING:
        raise QuerySyntaxError(
            f"content-model nesting exceeds {_MAX_NESTING} levels",
            position=scanner.pos,
        )
    if scanner.eat("("):
        inner = _parse_group_body(scanner, depth + 1)
        scanner.expect(")")
        particle: Model = inner
    else:
        particle = Sym(scanner.name())
    if scanner.eat("?"):
        return Optional_(particle)
    if scanner.eat("*"):
        return Repeat(particle, at_least_one=False)
    if scanner.eat("+"):
        return Repeat(particle, at_least_one=True)
    return particle


def _parse_group_body(scanner: _Scanner, depth: int = 0) -> Model:
    first = _parse_particle(scanner, depth)
    if scanner.eat(","):
        parts = [first, _parse_particle(scanner, depth)]
        while scanner.eat(","):
            parts.append(_parse_particle(scanner, depth))
        return Seq(tuple(parts))
    if scanner.eat("|"):
        options = [first, _parse_particle(scanner, depth)]
        while scanner.eat("|"):
            options.append(_parse_particle(scanner, depth))
        return Choice(tuple(options))
    return first


def _parse_element_decl(scanner: _Scanner) -> ElementDecl:
    name = scanner.name()
    scanner.skip_space_and_comments()
    if scanner.eat("EMPTY"):
        scanner.expect(">")
        return ElementDecl(name, empty=True)
    if scanner.eat("ANY"):
        scanner.expect(">")
        return ElementDecl(name, mixed=True)
    scanner.expect("(")
    if scanner.eat("#PCDATA"):
        options: list[Model] = []
        while scanner.eat("|"):
            options.append(Sym(scanner.name()))
        scanner.expect(")")
        scanner.eat("*")  # mixed models end in ')*' (optional for pure text)
        scanner.expect(">")
        if not options:
            # pure text: no child elements allowed (the empty sequence
            # accepts exactly the empty child string)
            return ElementDecl(name, model=Seq(()), mixed=True)
        model = Repeat(Choice(tuple(options)), at_least_one=False)
        return ElementDecl(name, model=model, mixed=True)
    body = _parse_group_body(scanner)
    scanner.expect(")")
    if scanner.eat("?"):
        body = Optional_(body)
    elif scanner.eat("*"):
        body = Repeat(body, at_least_one=False)
    elif scanner.eat("+"):
        body = Repeat(body, at_least_one=True)
    scanner.expect(">")
    return ElementDecl(name, model=body)


def parse_dtd(text: str, root: str | None = None) -> Dtd:
    """Parse a DTD (bare declarations or a full ``<!DOCTYPE``).

    Args:
        text: the DTD source.
        root: root element name; defaults to the DOCTYPE name or, for
            bare declarations, the first declared element.

    Raises:
        QuerySyntaxError: on malformed declarations.
    """
    scanner = _Scanner(text)
    doctype_root: str | None = None
    if scanner.eat("<!DOCTYPE"):
        doctype_root = scanner.name()
        scanner.expect("[")
    declarations: list[ElementDecl] = []
    while not scanner.at_end():
        if scanner.eat("]"):
            scanner.expect(">")
            break
        if scanner.eat("<!ELEMENT"):
            declarations.append(_parse_element_decl(scanner))
        elif scanner.eat("<!ATTLIST") or scanner.eat("<!ENTITY") or scanner.eat("<!NOTATION"):
            scanner.skip_until(">")
        else:
            raise QuerySyntaxError(
                f"unexpected DTD content at offset {scanner.pos}",
                position=scanner.pos,
            )
    if not declarations:
        raise QuerySyntaxError("DTD declares no elements")
    chosen_root = root or doctype_root or declarations[0].name
    dtd = Dtd(root=chosen_root)
    for declaration in declarations:
        if declaration.name in dtd.elements:
            raise QuerySyntaxError(
                f"element {declaration.name!r} declared twice"
            )
        dtd.elements[declaration.name] = declaration
    return dtd
