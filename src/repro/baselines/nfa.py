"""NFA compilation of rpeq, shared by the automaton-based baselines.

A regular path expression denotes a regular language over label tests; a
standard Thompson construction yields an NFA whose transitions are
labelled with tests (a concrete name, or the wildcard).  Qualifiers are
handled as *guards*: the sub-automaton of ``E[F]`` marks its final state
with the condition ``F``, and a run may occupy a guarded state at tree
node ``v`` only if ``F`` selects at least one node from ``v``.

The automaton machinery implements the evaluation strategy of the DFA-
based related work (X-Scan, Green et al.): state *sets* pushed on a stack
along the tree/stream, with transition results memoized so the subset
construction happens lazily, only for label/state-set combinations that
actually occur.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import UnsupportedFeatureError
from ..rpeq.ast import (
    Concat,
    Empty,
    Following,
    Label,
    OptionalExpr,
    Plus,
    Preceding,
    Qualifier,
    Rpeq,
    Star,
    Union,
)


@dataclass
class Nfa:
    """An NFA over label tests with optional per-state qualifier guards.

    Attributes:
        start: initial state.
        accept: unique accepting state.
        transitions: labelled edges ``state -> [(test, target), ...]``.
        epsilon: unlabelled edges ``state -> [target, ...]``.
        guarded_epsilon: conditional unlabelled edges
            ``state -> [(condition, target), ...]`` — traversable at a
            tree node only when the qualifier condition holds there.
            Guards live on edges, not states, so that a qualifier filters
            only the node it qualifies, never intermediate nodes of a
            closure chain passing through the same NFA state.
    """

    start: int
    accept: int
    transitions: dict[int, list[tuple[Label, int]]] = field(default_factory=dict)
    epsilon: dict[int, list[int]] = field(default_factory=dict)
    guarded_epsilon: dict[int, list[tuple[Rpeq, int]]] = field(default_factory=dict)

    @property
    def size(self) -> int:
        states = {self.start, self.accept}
        states.update(self.transitions)
        states.update(t for edges in self.transitions.values() for _, t in edges)
        states.update(self.epsilon)
        states.update(t for targets in self.epsilon.values() for t in targets)
        states.update(self.guarded_epsilon)
        states.update(t for edges in self.guarded_epsilon.values() for _, t in edges)
        return len(states)


class _Builder:
    """Thompson construction.

    Fragments returned by :meth:`build` may carry internal edges out of
    their accept state (the ``+`` self-loop), so combinators that add
    bypass edges (``*``, ``?``) wrap the fragment in fresh start/accept
    states first — otherwise a bypass would expose the internal loop to
    contexts that never entered the fragment.
    """

    def __init__(self, allow_qualifiers: bool) -> None:
        self.allow_qualifiers = allow_qualifiers
        self.transitions: dict[int, list[tuple[Label, int]]] = {}
        self.epsilon: dict[int, list[int]] = {}
        self.guarded_epsilon: dict[int, list[tuple[Rpeq, int]]] = {}
        self._next_state = 0

    def fresh(self) -> int:
        state = self._next_state
        self._next_state += 1
        return state

    def edge(self, source: int, test: Label, target: int) -> None:
        self.transitions.setdefault(source, []).append((test, target))

    def eps(self, source: int, target: int) -> None:
        self.epsilon.setdefault(source, []).append(target)

    def guarded_eps(self, source: int, condition: Rpeq, target: int) -> None:
        self.guarded_epsilon.setdefault(source, []).append((condition, target))

    def _wrapped(self, inner: tuple[int, int]) -> tuple[int, int]:
        """Isolate a fragment behind fresh start/accept states."""
        inner_start, inner_accept = inner
        start, accept = self.fresh(), self.fresh()
        self.eps(start, inner_start)
        self.eps(inner_accept, accept)
        return start, accept

    def build(self, expr: Rpeq) -> tuple[int, int]:
        """Return (start, accept) of the fragment for ``expr``."""
        if isinstance(expr, (Following, Preceding)):
            raise UnsupportedFeatureError(
                "following/preceding steps are not path-regular; the "
                "automaton-based evaluators support the core rpeq "
                "language only"
            )
        if isinstance(expr, Empty):
            start, accept = self.fresh(), self.fresh()
            self.eps(start, accept)
            return start, accept
        if isinstance(expr, Label):
            start, accept = self.fresh(), self.fresh()
            self.edge(start, expr, accept)
            return start, accept
        if isinstance(expr, Plus):
            start, accept = self.fresh(), self.fresh()
            self.edge(start, expr.label, accept)
            self.edge(accept, expr.label, accept)
            return start, accept
        if isinstance(expr, Star):
            start, accept = self._wrapped(self.build(Plus(expr.label)))
            self.eps(start, accept)
            return start, accept
        if isinstance(expr, OptionalExpr):
            start, accept = self._wrapped(self.build(expr.inner))
            self.eps(start, accept)
            return start, accept
        if isinstance(expr, Concat):
            left_start, left_accept = self.build(expr.left)
            right_start, right_accept = self.build(expr.right)
            self.eps(left_accept, right_start)
            return left_start, right_accept
        if isinstance(expr, Union):
            start, accept = self.fresh(), self.fresh()
            left_start, left_accept = self.build(expr.left)
            right_start, right_accept = self.build(expr.right)
            self.eps(start, left_start)
            self.eps(start, right_start)
            self.eps(left_accept, accept)
            self.eps(right_accept, accept)
            return start, accept
        if isinstance(expr, Qualifier):
            if not self.allow_qualifiers:
                raise UnsupportedFeatureError(
                    "this evaluator handles the qualifier-free fragment "
                    "only (like the DFA-based related work); qualifier "
                    f"found: {expr.condition!r}"
                )
            start, accept = self.build(expr.base)
            # The guard lives on an epsilon edge out of the base's accept:
            # a run continues past the qualifier only from nodes where the
            # condition holds, while the base's own states stay unguarded
            # (closure chains may pass through nodes failing the guard).
            qualified = self.fresh()
            self.guarded_eps(accept, expr.condition, qualified)
            return start, qualified
        raise TypeError(f"not an rpeq node: {expr!r}")


def compile_nfa(expr: Rpeq, allow_qualifiers: bool = True) -> Nfa:
    """Compile an rpeq AST to an :class:`Nfa`.

    Args:
        expr: the query.
        allow_qualifiers: when ``False`` (the X-Scan model), qualifiers
            raise :class:`~repro.errors.UnsupportedFeatureError`.
    """
    builder = _Builder(allow_qualifiers)
    start, accept = builder.build(expr)
    return Nfa(
        start=start,
        accept=accept,
        transitions=builder.transitions,
        epsilon=builder.epsilon,
        guarded_epsilon=builder.guarded_epsilon,
    )
