"""Tree-automaton evaluation over the materialized tree — the Fxgrep analog.

Fxgrep evaluates regular tree expressions against a parsed document.  Our
analog compiles the rpeq to an NFA with qualifier *guards* (see
:mod:`repro.baselines.nfa`) and runs NFA state sets down the materialized
tree: the state set of a node is derived from its parent's by one labelled
move, guard-filtered at the node, then epsilon-closed.  A node is a match
when its state set contains the accepting state.

Algorithmically this is a genuinely different evaluation strategy from
both the SPEX network and the declarative DOM oracle, which is exactly
what makes it valuable for differential testing — three independent
implementations must agree on every random query/document pair.
"""

from __future__ import annotations

from typing import Iterable

from ..rpeq.ast import Rpeq
from ..xmlstream.events import Event
from ..xmlstream.tree import Document, Node, build_document
from .dom_eval import _exists, _Memo
from .nfa import Nfa, compile_nfa


class TreeAutomatonEvaluator:
    """In-memory state-set evaluator for the full rpeq language."""

    name = "treegrep"

    def __init__(self, query: Rpeq) -> None:
        self._nfa: Nfa = compile_nfa(query, allow_qualifiers=True)

    def evaluate_document(self, document: Document) -> list[Node]:
        """Nodes selected by the query, in document order."""
        memo = _Memo()
        matches: list[Node] = []
        root_states = self._closure(
            frozenset((self._nfa.start,)), document.root, memo
        )
        if self._nfa.accept in root_states:
            matches.append(document.root)
        stack: list[tuple[Node, frozenset[int]]] = [
            (child, root_states) for child in reversed(document.root.children)
        ]
        while stack:
            node, parent_states = stack.pop()
            states = self._advance(parent_states, node, memo)
            if self._nfa.accept in states:
                matches.append(node)
            if states:
                stack.extend((child, states) for child in reversed(node.children))
            # With an empty state set no descendant can ever match: prune.
        return sorted(matches, key=lambda node: node.position)

    def evaluate(self, events: Iterable[Event]) -> list[Node]:
        """Materialize the stream, then evaluate (baseline cost model)."""
        return self.evaluate_document(build_document(events))

    # ------------------------------------------------------------------

    def _advance(
        self, states: frozenset[int], node: Node, memo: _Memo
    ) -> frozenset[int]:
        moved = frozenset(
            target
            for state in states
            for test, target in self._nfa.transitions.get(state, ())
            if test.matches(node.label)
        )
        return self._closure(moved, node, memo)

    def _closure(
        self, states: frozenset[int], node: Node, memo: _Memo
    ) -> frozenset[int]:
        """Epsilon closure at a tree node, taking guarded epsilon edges
        only when their qualifier condition holds at ``node``."""
        result: set[int] = set()
        stack = list(states)
        while stack:
            state = stack.pop()
            if state in result:
                continue
            result.add(state)
            stack.extend(self._nfa.epsilon.get(state, ()))
            for condition, target in self._nfa.guarded_epsilon.get(state, ()):
                if target not in result and _exists(condition, node, memo):
                    stack.append(target)
        return frozenset(result)
