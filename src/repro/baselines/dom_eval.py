"""In-memory (DOM) rpeq evaluation — the Saxon-analog baseline and oracle.

This evaluator does exactly what the paper's comparison processors do:
materialize the whole document tree, then evaluate the query over it.  It
is a direct transcription of the declarative rpeq semantics (see
:mod:`repro.rpeq.ast`), which makes it the *semantics oracle* for
differential testing of the streaming engine — slow and memory-hungry by
design, correct by construction.

Memory cost: the entire tree (``O(s)``) — the cost SPEX's transducer
network avoids (Fig. 14/15 and experiment E8 quantify this).
"""

from __future__ import annotations

from typing import Iterable

from ..rpeq.ast import (
    Concat,
    Empty,
    Following,
    Label,
    OptionalExpr,
    Plus,
    Preceding,
    Qualifier,
    Rpeq,
    Star,
    Union,
)
from ..xmlstream.events import Event
from ..xmlstream.tree import Document, Node, build_document


class DomEvaluator:
    """Materializing evaluator: build the tree, then walk it.

    Plays the role of Saxon in the paper's Fig. 14 comparison — a
    processor that "constructs in-memory representations of the streams".
    """

    name = "dom"

    def __init__(self, query: Rpeq) -> None:
        self._query = query

    def evaluate_document(self, document: Document) -> list[Node]:
        """Nodes selected by the query, in document order, no duplicates."""
        result = _eval(self._query, [document.root], _Memo())
        return sorted(result, key=lambda node: node.position)

    def evaluate(self, events: Iterable[Event]) -> list[Node]:
        """Materialize an event stream, then evaluate (the baseline cost)."""
        return self.evaluate_document(build_document(events))


class _Memo:
    """Memoization tables keyed by (sub-expression, context node).

    ``select`` caches full result sets; ``exists`` caches the cheaper
    non-emptiness checks used for qualifier conditions.  Sub-expressions
    are keyed by identity: hashing a deep AST would recurse once per
    level, and within one evaluation every sub-expression is a single
    object anyway (the query outlives the memo, so ids are stable).
    """

    def __init__(self) -> None:
        self.select: dict[tuple[int, int], frozenset[Node]] = {}
        self.exists: dict[tuple[int, int], bool] = {}


def _eval(expr: Rpeq, contexts: Iterable[Node], memo: _Memo) -> set[Node]:
    result: set[Node] = set()
    for context in contexts:
        result |= _eval_one(expr, context, memo)
    return result


def _eval_one(expr: Rpeq, context: Node, memo: _Memo) -> frozenset[Node]:
    key = (id(expr), context.position)
    cached = memo.select.get(key)
    if cached is not None:
        return cached
    result: frozenset[Node]
    if isinstance(expr, Empty):
        result = frozenset((context,))
    elif isinstance(expr, Label):
        result = frozenset(
            child for child in context.children if expr.matches(child.label)
        )
    elif isinstance(expr, Plus):
        result = frozenset(_closure(expr.label, context))
    elif isinstance(expr, Star):
        result = frozenset(_closure(expr.label, context)) | {context}
    elif isinstance(expr, Concat):
        # Fold the left spine iteratively (long chains would otherwise
        # recurse once per step).
        parts: list[Rpeq] = []
        node: Rpeq = expr
        while isinstance(node, Concat):
            parts.append(node.right)
            node = node.left
        parts.append(node)
        contexts: set[Node] = {context}
        for part in reversed(parts):
            contexts = _eval(part, contexts, memo)
        result = frozenset(contexts)
    elif isinstance(expr, Union):
        result = _eval_one(expr.left, context, memo) | _eval_one(
            expr.right, context, memo
        )
    elif isinstance(expr, OptionalExpr):
        result = _eval_one(expr.inner, context, memo) | {context}
    elif isinstance(expr, Qualifier):
        base = _eval_one(expr.base, context, memo)
        result = frozenset(
            node for node in base if _exists(expr.condition, node, memo)
        )
    elif isinstance(expr, Following):
        result = frozenset(_following(expr.label, context))
    elif isinstance(expr, Preceding):
        result = frozenset(_preceding(expr.label, context))
    else:  # pragma: no cover - exhaustive over AST types
        raise TypeError(f"not an rpeq node: {expr!r}")
    memo.select[key] = result
    return result


def _document_root(context: Node) -> Node:
    node = context
    while node.parent is not None:
        node = node.parent
    return node


def _following(label: Label, context: Node) -> Iterable[Node]:
    """Elements starting after ``context``'s subtree ends (XPath following)."""
    in_subtree = {id(node) for node in context.iter_subtree()}
    return [
        node
        for node in _document_root(context).iter_descendants()
        if node.position > context.position
        and id(node) not in in_subtree
        and label.matches(node.label)
    ]


def _preceding(label: Label, context: Node) -> Iterable[Node]:
    """Elements ending before ``context`` starts (XPath preceding)."""
    ancestors = set()
    node = context.parent
    while node is not None:
        ancestors.add(id(node))
        node = node.parent
    return [
        node
        for node in _document_root(context).iter_descendants()
        if node.position < context.position
        and id(node) not in ancestors
        and label.matches(node.label)
    ]


def _closure(label: Label, context: Node) -> Iterable[Node]:
    """Nodes reachable by one or more child steps all matching ``label``."""
    stack = [child for child in context.children if label.matches(child.label)]
    seen: list[Node] = []
    while stack:
        node = stack.pop()
        seen.append(node)
        stack.extend(
            child for child in node.children if label.matches(child.label)
        )
    return seen


def _exists(expr: Rpeq, context: Node, memo: _Memo) -> bool:
    """Short-circuiting non-emptiness test for qualifier conditions."""
    key = (id(expr), context.position)
    cached = memo.exists.get(key)
    if cached is not None:
        return cached
    if isinstance(expr, (Empty, Star, OptionalExpr)):
        result = True  # these always select at least the context node
    elif isinstance(expr, Label):
        result = any(expr.matches(child.label) for child in context.children)
    elif isinstance(expr, Plus):
        result = any(expr.label.matches(child.label) for child in context.children)
    elif isinstance(expr, Union):
        result = _exists(expr.left, context, memo) or _exists(
            expr.right, context, memo
        )
    elif isinstance(expr, Concat):
        first = _eval_one(expr.left, context, memo)
        result = any(_exists(expr.right, node, memo) for node in first)
    elif isinstance(expr, Qualifier):
        base = _eval_one(expr.base, context, memo)
        result = any(_exists(expr.condition, node, memo) for node in base)
    elif isinstance(expr, (Following, Preceding)):
        result = bool(_eval_one(expr, context, memo))
    else:  # pragma: no cover - exhaustive over AST types
        raise TypeError(f"not an rpeq node: {expr!r}")
    memo.exists[key] = result
    return result
