"""Baseline rpeq evaluators the paper compares against (or relates to).

* :class:`DomEvaluator` — materialize the tree, evaluate declaratively
  (the Saxon analog; also the semantics oracle for differential tests).
* :class:`TreeAutomatonEvaluator` — NFA state-set evaluation over the
  materialized tree (the Fxgrep analog).
* :class:`XScanEvaluator` — lazy-DFA streaming evaluation of the
  qualifier-free fragment (the X-Scan / Green et al. analog).
* :class:`NaiveStreamEvaluator` — buffer the stream, then DOM-evaluate
  (what a system without a streaming evaluator must do).
"""

from .dom_eval import DomEvaluator
from .naive_stream import NaiveStreamEvaluator
from .tree_automaton import TreeAutomatonEvaluator
from .xscan import XScanEvaluator

__all__ = [
    "DomEvaluator",
    "NaiveStreamEvaluator",
    "TreeAutomatonEvaluator",
    "XScanEvaluator",
]
