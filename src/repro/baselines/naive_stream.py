"""Buffer-everything streaming — the no-streaming-evaluator strawman.

Any system without a streamed evaluator must buffer the stream, build the
tree and only then evaluate.  This evaluator does exactly that (buffer
``list(events)`` first, explicitly, then delegate to the DOM evaluator),
so the memory experiments can report the full cost SPEX avoids — including
the buffered event list itself, which the `evaluate(events)` shortcut of
the other baselines would hide.
"""

from __future__ import annotations

from typing import Iterable

from ..rpeq.ast import Rpeq
from ..xmlstream.events import Event
from ..xmlstream.tree import build_document
from .dom_eval import DomEvaluator


class NaiveStreamEvaluator:
    """Buffer the whole stream, then evaluate in memory."""

    name = "buffer-dom"

    def __init__(self, query: Rpeq) -> None:
        self._inner = DomEvaluator(query)
        #: events buffered by the last run, exposed for memory accounting
        self.buffered_events: int = 0

    def evaluate(self, events: Iterable[Event]) -> list:
        """Consume and buffer the stream, then evaluate the query."""
        buffered: list[Event] = list(events)
        self.buffered_events = len(buffered)
        return self._inner.evaluate_document(build_document(buffered))
