"""Lazy-DFA streaming evaluation — the X-Scan / Green et al. analog.

Compiles a *qualifier-free* rpeq to an NFA and runs it over the stream
with a stack of state sets, determinizing lazily: the subset transition
for a (state-set, label) pair is computed on first use and memoized.
This is the approach of the related work the paper cites ([2], [18]) and
serves as the streaming baseline in the ablation experiments — it shows
what SPEX adds (qualifiers, formulas, progressive candidate handling) and
what it costs.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..rpeq.ast import Rpeq
from ..xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
)
from .nfa import Nfa, compile_nfa


class XScanEvaluator:
    """Streaming matcher for the qualifier-free rpeq fragment.

    Raises:
        UnsupportedFeatureError: at construction, if the query contains
            qualifiers.
    """

    name = "xscan"

    def __init__(self, query: Rpeq) -> None:
        self._nfa: Nfa = compile_nfa(query, allow_qualifiers=False)
        self._dfa_cache: dict[tuple[frozenset[int], str], frozenset[int]] = {}
        self._closure_cache: dict[frozenset[int], frozenset[int]] = {}

    @property
    def dfa_states_built(self) -> int:
        """Number of lazily materialized subset transitions (for E10)."""
        return len(self._dfa_cache)

    def _closure(self, states: frozenset[int]) -> frozenset[int]:
        cached = self._closure_cache.get(states)
        if cached is not None:
            return cached
        result = set(states)
        stack = list(states)
        while stack:
            state = stack.pop()
            for target in self._nfa.epsilon.get(state, ()):
                if target not in result:
                    result.add(target)
                    stack.append(target)
        frozen = frozenset(result)
        self._closure_cache[states] = frozen
        return frozen

    def _step(self, states: frozenset[int], label: str) -> frozenset[int]:
        key = (states, label)
        cached = self._dfa_cache.get(key)
        if cached is not None:
            return cached
        moved = frozenset(
            target
            for state in states
            for test, target in self._nfa.transitions.get(state, ())
            if test.matches(label)
        )
        result = self._closure(moved)
        self._dfa_cache[key] = result
        return result

    def matches(self, events: Iterable[Event]) -> Iterator[int]:
        """Yield document-order positions of matched elements.

        Position 0 denotes the virtual root (selected by queries with an
        epsilon component), aligning with the other evaluators.
        """
        stack: list[frozenset[int]] = []
        position = 0
        for event in events:
            if isinstance(event, StartDocument):
                initial = self._closure(frozenset((self._nfa.start,)))
                if self._nfa.accept in initial:
                    yield 0
                stack.append(initial)
            elif isinstance(event, StartElement):
                position += 1
                current = self._step(stack[-1], event.label)
                if self._nfa.accept in current:
                    yield position
                stack.append(current)
            elif isinstance(event, (EndElement, EndDocument)):
                stack.pop()

    def evaluate(self, events: Iterable[Event]) -> list[int]:
        """All matched positions, eagerly."""
        return list(self.matches(events))
