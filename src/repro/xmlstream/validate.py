"""Stream well-formedness checking.

The paper's transducers assume well-formed input (matched tags inside a
single ``<$>``/``</$>`` envelope).  :func:`checked` wraps any event stream
and raises :class:`~repro.errors.StreamError` the moment an invariant is
violated, so engine bugs are never silently blamed on bad input.  The check
itself is the textbook 1-PDA the paper's Theorem IV.1 alludes to: a single
stack of open labels.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import StreamError
from .events import EndDocument, EndElement, Event, StartDocument, StartElement, Text


def checked(
    events: Iterable[Event],
    require_end: bool = True,
    open_labels: Iterable[str] | None = None,
    started: bool = False,
) -> Iterator[Event]:
    """Yield events unchanged while validating well-formedness.

    Invariants enforced:

    * the first event is ``<$>`` and the last is ``</$>``;
    * element events occur only inside the envelope;
    * every end tag matches the most recent open start tag;
    * no events follow ``</$>``.

    Args:
        require_end: raise when the stream ends before ``</$>``.  Pass
            ``False`` for live/unbounded sources, where every finite
            read is a prefix.
        open_labels: prime the validator mid-document: labels of the
            elements already open at this stream position (outermost
            first).  Used when resuming from a checkpoint, where the
            events before the cut have already been validated.
        started: prime the validator as if ``<$>`` has already passed
            (implied by a non-empty ``open_labels``).
    """
    stack: list[str] = list(open_labels) if open_labels is not None else []
    seen_start = started or bool(stack)
    seen_end = False
    for event in events:
        if seen_end:
            raise StreamError(f"event {event} after </$>")
        if isinstance(event, StartDocument):
            if seen_start:
                raise StreamError("duplicate <$>")
            seen_start = True
        elif isinstance(event, EndDocument):
            if not seen_start:
                raise StreamError("</$> without <$>")
            if stack:
                raise StreamError(f"</$> with unclosed elements {stack}")
            seen_end = True
        elif isinstance(event, StartElement):
            if not seen_start:
                raise StreamError(f"<{event.label}> before <$>")
            stack.append(event.label)
        elif isinstance(event, EndElement):
            if not stack:
                raise StreamError(f"</{event.label}> with no open element")
            if stack[-1] != event.label:
                raise StreamError(f"</{event.label}> does not close <{stack[-1]}>")
            stack.pop()
        elif isinstance(event, Text):
            if not seen_start:
                raise StreamError("text before <$>")
        yield event
    if require_end and seen_start and not seen_end:
        raise StreamError("stream ended before </$>")


def is_well_formed(events: Iterable[Event]) -> bool:
    """Return ``True`` when the stream satisfies all envelope invariants."""
    try:
        for _ in checked(events):
            pass
    except StreamError:
        return False
    return True
