"""Offset tracking and resumable positioning for event streams.

Checkpointing a streaming run (see :mod:`repro.core.checkpoint`) needs to
tag engine state with the *source position* it corresponds to, and
resuming needs to reposition a fresh source at exactly that point.  Both
halves live here:

* :class:`StreamCursor` — wraps any event iterable and counts events
  while tracking the envelope state a validator would need at that point
  (open-element label stack, whether a document is open, documents
  seen).  The cursor advances *before* the event is handed downstream,
  so whenever the consumer holds event ``n`` the cursor reads ``n`` —
  the invariant that makes "checkpoint after the last fully-processed
  event" exact.
* :func:`skip_events` — discard a prefix of a stream.  Re-reading a file
  and skipping is how resume "seeks": SAX keeps no restartable parse
  state, so the honest repositioning primitive is a cheap re-parse of
  the prefix with no engine work attached (the transducer network never
  sees the skipped events).
* :class:`CountingReader` — byte-level accounting for file-like
  sources, so operational dashboards can report progress in bytes as
  well as events.
"""

from __future__ import annotations

from typing import IO, Iterable, Iterator

from ..errors import StreamError
from .events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
)


class StreamCursor:
    """Counts events and mirrors the envelope state of a stream position.

    Attributes:
        events_read: number of events that have passed the cursor.
        open_labels: labels of the currently open elements (innermost
            last) — exactly the stack a well-formedness validator holds.
        in_document: whether a ``<$>`` is open at this position.
        documents_seen: number of ``<$>`` events that have passed.
    """

    def __init__(self) -> None:
        self.events_read = 0
        self.open_labels: list[str] = []
        self.in_document = False
        self.documents_seen = 0

    def attach(self, events: Iterable[Event]) -> Iterator[Event]:
        """Yield ``events`` unchanged, updating the cursor *first*.

        The update-then-yield order guarantees that when the consumer is
        processing (or has just finished processing) event ``n``, the
        cursor already reflects position ``n`` — so a checkpoint taken
        between events never over- or under-counts.
        """
        for event in events:
            self.advance(event)
            yield event

    def advance(self, event: Event) -> None:
        """Account for one event (exposed for callers with own loops)."""
        self.events_read += 1
        cls = event.__class__
        if cls is StartElement:
            self.open_labels.append(event.label)
        elif cls is EndElement:
            if self.open_labels:
                self.open_labels.pop()
        elif cls is StartDocument:
            self.in_document = True
            self.documents_seen += 1
        elif cls is EndDocument:
            self.in_document = False

    def state(self) -> dict:
        """JSON-serializable snapshot of the position."""
        return {
            "events_read": self.events_read,
            "open_labels": list(self.open_labels),
            "in_document": self.in_document,
            "documents_seen": self.documents_seen,
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamCursor":
        """Rebuild a cursor at a checkpointed position."""
        cursor = cls()
        cursor.events_read = int(state["events_read"])
        cursor.open_labels = [str(label) for label in state["open_labels"]]
        cursor.in_document = bool(state["in_document"])
        cursor.documents_seen = int(state["documents_seen"])
        return cursor


def skip_events(events: Iterable[Event], count: int) -> Iterator[Event]:
    """Discard the first ``count`` events; yield the rest.

    Raises:
        StreamError: the stream ended before ``count`` events — the
            source a resume is pointed at is shorter than the stream the
            checkpoint was taken from, which means it is *not* the same
            stream; continuing would silently corrupt results.
    """
    iterator = iter(events)
    for index in range(count):
        try:
            next(iterator)
        except StopIteration:
            raise StreamError(
                f"cannot resume: source ended after {index} event(s), "
                f"checkpoint position is {count}"
            ) from None
    yield from iterator


class CountingReader:
    """File-object wrapper counting the bytes handed to the parser.

    Wrap the handle given to :func:`repro.xmlstream.parse_stream` and
    read :attr:`bytes_read` at any time — e.g. to log checkpoint
    positions in bytes for operational dashboards, or to estimate
    progress against a known file size.
    """

    def __init__(self, handle: IO[bytes] | IO[str]) -> None:
        self._handle = handle
        self.bytes_read = 0

    def read(self, size: int = -1):
        chunk = self._handle.read(size)
        self.bytes_read += len(chunk)
        return chunk

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "CountingReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
