"""XML stream event model.

An *XML stream* in the sense of the paper (Sec. II.1) is a sequence of
document messages produced by a depth-first left-to-right traversal of an
XML document tree, wrapped in a start-document / end-document envelope:

    <$> <a> <a> <c> </c> </a> <b> </b> <c> </c> </a> </$>

This module defines the event classes used throughout the library.  Events
are small immutable objects; streams are plain Python iterables of events,
which lets every component work with generators, lists, files, sockets or
unbounded synthetic sources interchangeably.

The paper ignores attributes, namespaces, comments and processing
instructions; we keep attributes and text as optional payload (they ride
along unharmed and are reproduced in serialized results) but the query
language never inspects them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

#: Reserved label of the virtual document root.  The start-document message
#: ``<$>`` behaves exactly like a start tag with this label.
DOCUMENT_LABEL = "$"


@dataclass(frozen=True, slots=True)
class Event:
    """Base class for stream events (document messages)."""


@dataclass(frozen=True, slots=True)
class StartDocument(Event):
    """The ``<$>`` message opening a document."""

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "<$>"


@dataclass(frozen=True, slots=True)
class EndDocument(Event):
    """The ``</$>`` message closing a document."""

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "</$>"


@dataclass(frozen=True, slots=True)
class StartElement(Event):
    """A ``<label>`` message opening an element.

    Attributes:
        label: the element's tag name.
        attributes: attribute mapping carried along for round-tripping;
            never inspected by rpeq queries.
    """

    label: str
    attributes: Mapping[str, str] = field(default_factory=dict, compare=False)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.label}>"


@dataclass(frozen=True, slots=True)
class EndElement(Event):
    """A ``</label>`` message closing an element."""

    label: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"</{self.label}>"


@dataclass(frozen=True, slots=True)
class Text(Event):
    """Character data between tags.

    Text is transparent to the rpeq semantics: queries never match it, but
    it is buffered and reproduced inside result fragments.
    """

    content: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.content


def is_document_boundary(event: Event) -> bool:
    """Return ``True`` for the ``<$>`` / ``</$>`` envelope messages."""
    return isinstance(event, (StartDocument, EndDocument))


def label_of(event: Event) -> str | None:
    """Return the label an event carries, treating the envelope as ``$``.

    ``Text`` events carry no label and yield ``None``.
    """
    if isinstance(event, (StartElement, EndElement)):
        return event.label
    if is_document_boundary(event):
        return DOCUMENT_LABEL
    return None


def event_to_obj(event: Event) -> object:
    """Stable, JSON-serializable form of one event (checkpoint codec)."""
    cls = event.__class__
    if cls is StartDocument:
        return ["sd"]
    if cls is EndDocument:
        return ["ed"]
    if cls is StartElement:
        if event.attributes:
            return ["se", event.label, dict(event.attributes)]
        return ["se", event.label]
    if cls is EndElement:
        return ["ee", event.label]
    if cls is Text:
        return ["tx", event.content]
    raise TypeError(f"not an event: {event!r}")


def event_from_obj(obj: object) -> Event:
    """Inverse of :func:`event_to_obj`."""
    if isinstance(obj, (list, tuple)) and obj:
        tag = obj[0]
        if tag == "sd":
            return StartDocument()
        if tag == "ed":
            return EndDocument()
        if tag == "se":
            return StartElement(obj[1], dict(obj[2]) if len(obj) > 2 else {})
        if tag == "ee":
            return EndElement(obj[1])
        if tag == "tx":
            return Text(obj[1])
    raise ValueError(f"not an encoded event: {obj!r}")


def events_from_tags(tags: Iterable[str]) -> Iterator[Event]:
    """Build an event stream from a compact tag notation.

    This mirrors the stream notation used by the paper's figures and makes
    tests read like the paper::

        events_from_tags(["<$>", "<a>", "</a>", "</$>"])

    Tokens ``<$>`` and ``</$>`` become document boundaries; ``<x>`` /
    ``</x>`` become element events; anything not shaped like a tag becomes
    a :class:`Text` event.
    """
    for tag in tags:
        if tag == "<$>":
            yield StartDocument()
        elif tag == "</$>":
            yield EndDocument()
        elif tag.startswith("</") and tag.endswith(">"):
            yield EndElement(tag[2:-1])
        elif tag.startswith("<") and tag.endswith(">"):
            yield StartElement(tag[1:-1])
        else:
            yield Text(tag)


def tags_from_events(events: Iterable[Event]) -> list[str]:
    """Inverse of :func:`events_from_tags`, used by tests and debugging."""
    return [str(event) for event in events]
