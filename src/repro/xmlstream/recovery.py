"""Recovery policies for malformed multi-document streams.

:func:`~repro.xmlstream.validate.checked` implements the paper's model:
input is well-formed by assumption, and the first violation kills the
run.  A dissemination service (paper Sec. I) cannot afford that — one
truncated connection or one bad subscriber document must not poison a
stream carrying thousands of other documents.  This module adds the
production behaviours:

* :data:`RecoveryPolicy.STRICT` — today's contract: raise
  :class:`~repro.errors.StreamError` at the first violation (but, unlike
  ``checked``, understands *multi-document* streams: a new ``<$>`` may
  follow a ``</$>``).
* :data:`RecoveryPolicy.SKIP_DOCUMENT` — quarantine the malformed
  document: its events are withheld, an :class:`ErrorRecord` is filed,
  and the stream resumes at the next ``<$>``.  Documents are buffered
  until their ``</$>`` validates, so a bad document is never partially
  emitted (memory: one document, not the stream).
* :data:`RecoveryPolicy.REPAIR` — fix the stream in flight, without
  buffering: unclosed tags are auto-closed on truncation (including a
  :class:`~repro.errors.StreamError` raised by the underlying parser —
  a truncated file repairs into its readable prefix), orphan and
  mismatched end tags are dropped or resolved by closing the elements
  above the matching open tag, and garbage between documents is
  discarded.

Every deviation is reported through an :class:`ErrorReport`, giving the
caller the per-document error records the SDI scenario needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterable, Iterator

from ..errors import StreamError
from .events import EndDocument, EndElement, Event, StartDocument, StartElement, Text


class RecoveryPolicy(Enum):
    """What to do when a stream violates well-formedness."""

    STRICT = "strict"
    SKIP_DOCUMENT = "skip"
    REPAIR = "repair"


def as_policy(value: RecoveryPolicy | str) -> RecoveryPolicy:
    """Coerce a policy name (``"strict"``/``"skip"``/``"repair"``)."""
    if isinstance(value, RecoveryPolicy):
        return value
    try:
        return RecoveryPolicy(value)
    except ValueError:
        names = ", ".join(p.value for p in RecoveryPolicy)
        raise ValueError(f"unknown recovery policy {value!r} (expected one of {names})") from None


@dataclass(frozen=True)
class ErrorRecord:
    """One recovery event: what went wrong, where, and what was done.

    Attributes:
        document: 0-based index of the affected document in the stream
            (``-1`` for garbage between documents).
        message: human-readable description of the violation.
        action: ``"skipped"`` (document quarantined), ``"repaired"``
            (events synthesized/dropped in place), ``"dropped"``
            (inter-document garbage discarded), or ``"limit"``
            (a resource guard fired; filed by the engines).
    """

    document: int
    message: str
    action: str


@dataclass
class ErrorReport:
    """Accumulating sink for recovery and resource-guard records.

    Pass one instance to :func:`recovering` or to an engine's
    ``on_error``-aware entry point; inspect it afterwards (or live,
    through ``callback``) to learn what the run survived.
    """

    records: list[ErrorRecord] = field(default_factory=list)
    documents_seen: int = 0
    documents_skipped: int = 0
    events_repaired: int = 0
    events_dropped: int = 0
    limit_hits: int = 0
    callback: Callable[[ErrorRecord], None] | None = None

    def add(self, document: int, message: str, action: str) -> ErrorRecord:
        record = ErrorRecord(document, message, action)
        self.records.append(record)
        if action == "skipped":
            self.documents_skipped += 1
        elif action == "limit":
            self.limit_hits += 1
        if self.callback is not None:
            self.callback(record)
        return record

    @property
    def ok(self) -> bool:
        """``True`` when the stream needed no intervention."""
        return not self.records

    def summary(self) -> str:
        """One line suitable for a log or the CLI's stderr."""
        return (
            f"{self.documents_seen} document(s): "
            f"{self.documents_skipped} skipped, "
            f"{self.events_repaired} event(s) repaired, "
            f"{self.events_dropped} dropped, "
            f"{self.limit_hits} limit hit(s), "
            f"{len(self.records)} error record(s)"
        )


_END_OF_STREAM = object()


def recovering(
    events: Iterable[Event],
    policy: RecoveryPolicy | str = RecoveryPolicy.STRICT,
    report: ErrorReport | None = None,
    require_end: bool = True,
    resume: dict | None = None,
) -> Iterator[Event]:
    """Yield a well-formed multi-document stream, per the chosen policy.

    The output is guaranteed well-formed under ``SKIP_DOCUMENT`` and
    ``REPAIR`` (every yielded document validates); under ``STRICT`` the
    first violation raises :class:`~repro.errors.StreamError` exactly as
    :func:`~repro.xmlstream.validate.checked` would, except that a
    sequence of ``<$>…</$>`` envelopes is accepted.

    A :class:`~repro.errors.StreamError` raised *by the source iterator
    itself* (e.g. the SAX parser hitting a truncated file) is treated as
    truncation: re-raised under ``STRICT``, quarantined under
    ``SKIP_DOCUMENT``, auto-closed under ``REPAIR``.

    Args:
        events: the (possibly malformed, possibly multi-document) input.
        policy: a :class:`RecoveryPolicy` or its string name.
        report: receives :class:`ErrorRecord` entries and counters;
            a throwaway report is used when ``None``.
        require_end: treat end-of-input inside a document as an error.
            Pass ``False`` for live sources, where every finite read is
            a prefix; the trailing incomplete document is then silently
            withheld (``SKIP_DOCUMENT``) or left unclosed (``REPAIR``
            yields the open prefix unrepaired, mirroring ``checked``).
        resume: prime the validator at a mid-stream position (a
            :meth:`repro.xmlstream.StreamCursor.state` dict with
            ``documents_seen``, ``in_document`` and ``open_labels``).
            Only meaningful under ``STRICT``, where the events before
            the cut were already validated on the original pass; the
            recovering policies rewrite the stream, so a checkpoint
            position would not line up with their output.
    """
    policy = as_policy(policy)
    report = report if report is not None else ErrorReport()
    source = iter(events)
    strict = policy is RecoveryPolicy.STRICT
    skip = policy is RecoveryPolicy.SKIP_DOCUMENT
    if resume is not None and not strict:
        raise ValueError("resume priming requires the strict policy")

    pushback: list[Event] = []

    def pull() -> object:
        """Next source event, ``_END_OF_STREAM``, or a StreamError marker."""
        if pushback:
            return pushback.pop()
        try:
            return next(source)
        except StopIteration:
            return _END_OF_STREAM
        except StreamError as exc:
            if strict:
                raise
            return exc

    doc = -1  # index of the current document
    in_doc = False
    stack: list[str] = []
    if resume is not None:
        doc = int(resume.get("documents_seen", 0)) - 1
        in_doc = bool(resume.get("in_document"))
        stack = [str(label) for label in resume.get("open_labels", [])]
    buffer: list[Event] | None = None  # SKIP: events of the current document
    garbage_reported = False  # one record per run of inter-document garbage

    def emit(event: Event) -> Iterator[Event]:
        if skip:
            assert buffer is not None
            buffer.append(event)
            return iter(())
        return iter((event,))

    def quarantine(message: str) -> None:
        """SKIP: discard the current document and resync to the next <$>."""
        nonlocal in_doc, buffer
        report.add(doc, message, "skipped")
        buffer = None
        in_doc = False
        while True:
            event = pull()
            if event is _END_OF_STREAM:
                return
            if isinstance(event, StreamError):
                return  # source is dead; nothing left to resync to
            if isinstance(event, StartDocument):
                pushback.append(event)
                return
            report.events_dropped += 1

    while True:
        event = pull()

        if event is _END_OF_STREAM or isinstance(event, StreamError):
            truncated_by_source = isinstance(event, StreamError)
            if not in_doc:
                if truncated_by_source:
                    # The source died between documents (e.g. input that
                    # is not XML at all): nothing to recover, but the
                    # report must not read "ok".
                    report.add(-1, f"source failed: {event}", "dropped")
                return
            if not require_end and not truncated_by_source:
                # Prefix semantics: an open document on a live source is
                # not an error — but a SKIP buffer is withheld (it never
                # validated) while REPAIR has already yielded the prefix.
                return
            message = (
                f"source failed mid-document: {event}"
                if truncated_by_source
                else f"stream ended before </$> ({len(stack)} unclosed element(s))"
            )
            if strict:
                raise StreamError(message)
            if skip:
                report.add(doc, message, "skipped")
                return
            # REPAIR: auto-close the truncation.
            report.add(doc, message, "repaired")
            while stack:
                report.events_repaired += 1
                yield EndElement(stack.pop())
            report.events_repaired += 1
            yield EndDocument()
            return

        if not in_doc:
            if isinstance(event, StartDocument):
                doc += 1
                report.documents_seen += 1
                in_doc = True
                stack = []
                garbage_reported = False
                if skip:
                    buffer = [event]
                else:
                    yield event
                continue
            # Garbage between documents (or a missing <$>).
            if strict:
                raise StreamError(f"expected <$> between documents, got {event}")
            if policy is RecoveryPolicy.REPAIR and isinstance(
                event, (StartElement, Text)
            ):
                # Missing envelope open: synthesize it and re-process the
                # event inside the new document.
                doc += 1
                report.documents_seen += 1
                report.events_repaired += 1
                report.add(doc, f"missing <$> before {event}", "repaired")
                in_doc = True
                stack = []
                pushback.append(event)
                yield StartDocument()
                continue
            report.events_dropped += 1
            if not garbage_reported:
                garbage_reported = True
                report.add(-1, f"event {event} between documents", "dropped")
            continue

        # Inside a document.
        if isinstance(event, StartElement):
            stack.append(event.label)
            yield from emit(event)
        elif isinstance(event, Text):
            yield from emit(event)
        elif isinstance(event, EndElement):
            if stack and stack[-1] == event.label:
                stack.pop()
                yield from emit(event)
            elif event.label in stack:
                message = f"</{event.label}> does not close <{stack[-1]}>"
                if strict:
                    raise StreamError(message)
                if skip:
                    quarantine(message)
                    continue
                # REPAIR: close the elements above the matching open tag.
                report.add(doc, message, "repaired")
                while stack[-1] != event.label:
                    report.events_repaired += 1
                    yield EndElement(stack.pop())
                stack.pop()
                yield event
            else:
                message = (
                    f"</{event.label}> with no open element"
                    if not stack
                    else f"</{event.label}> matches no open element"
                )
                if strict:
                    raise StreamError(message)
                if skip:
                    quarantine(message)
                    continue
                report.events_dropped += 1
                report.add(doc, f"{message}; dropped", "repaired")
        elif isinstance(event, EndDocument):
            if stack:
                message = f"</$> with unclosed elements {stack}"
                if strict:
                    raise StreamError(message)
                if skip:
                    quarantine(message)
                    continue
                report.add(doc, message, "repaired")
                while stack:
                    report.events_repaired += 1
                    yield EndElement(stack.pop())
            in_doc = False
            if skip:
                assert buffer is not None
                buffer.append(event)
                yield from buffer
                buffer = None
            else:
                yield event
        elif isinstance(event, StartDocument):
            message = "duplicate <$>"
            if strict:
                raise StreamError(message)
            if skip:
                # The malformed document ends here; this <$> opens the
                # next one.
                report.add(doc, message, "skipped")
                buffer = None
                in_doc = False
                pushback.append(event)
                continue
            report.events_dropped += 1
            report.add(doc, f"{message}; dropped", "repaired")
        else:  # pragma: no cover - event hierarchy is closed
            raise StreamError(f"unknown event {event!r}")


def recovered_documents(
    events: Iterable[Event],
    policy: RecoveryPolicy | str = RecoveryPolicy.STRICT,
    report: ErrorReport | None = None,
    require_end: bool = True,
) -> Iterator[Iterator[Event]]:
    """Split a recovering stream into per-document event iterators.

    Every yielded document is guaranteed well-formed under
    ``SKIP_DOCUMENT``/``REPAIR``, so downstream per-document evaluation
    cannot trip over the input.  The split is single-pass and buffers
    one document at a time (memory: one document, not the stream), so
    an unbounded multi-document feed is processed incrementally.  With
    ``require_end=False`` a trailing incomplete document — a prefix of
    a live stream — is withheld rather than yielded half-open.
    """
    recovered = recovering(events, policy, report, require_end=require_end)
    document: list[Event] = []
    for event in recovered:
        document.append(event)
        if isinstance(event, EndDocument):
            yield iter(document)
            document = []
    # Anything left is an unterminated prefix (only possible with
    # require_end=False): withheld, per prefix semantics.
