"""Parsing XML text into event streams.

Two entry points are provided:

* :func:`parse_string` / :func:`parse_file` — built on :mod:`xml.sax`, the
  very API the paper models its streams after.  The SAX callbacks are
  bridged into a pull-style generator through an incremental feed loop so
  that arbitrarily large files are processed with bounded memory.
* :func:`iter_events` — convenience dispatcher accepting strings, paths or
  already-iterable event sequences.

All parsers emit the paper's envelope: a :class:`~repro.xmlstream.events.
StartDocument` before the root element and an :class:`~repro.xmlstream.
events.EndDocument` after it.

Untrusted-input hardening
-------------------------

On a shared serving pass the *parser* is attack surface before any
transducer sees an event: a billion-laughs entity bomb expands kilobytes
of input into gigabytes of character data, and pathological tokens
(mile-long tag names, giant attributes, unbounded text runs) inflate
every downstream buffer at once.  Passing a :class:`ParserLimits` arms
per-token ceilings checked inside the SAX callbacks plus an
entity-declaration analysis that computes each declared entity's full
expansion size and nesting depth *before* expat ever expands it, so a
bomb is rejected at declaration time for the cost of reading its DTD
subset.  Every trip raises a coded, recoverable
:class:`~repro.errors.InputLimitError` — a :class:`StreamError`
subclass, so the recovery policies (:mod:`repro.xmlstream.recovery`)
quarantine or repair the poisoned document like any other malformed
input.
"""

from __future__ import annotations

import io
import os
import re
import sys
import xml.sax
import xml.sax.handler
from collections import deque
from dataclasses import dataclass
from typing import IO, Iterable, Iterator

from ..errors import InputLimitError, StreamError
from .events import EndDocument, EndElement, Event, StartDocument, StartElement, Text

#: Number of bytes handed to the SAX parser per feed step.
_CHUNK_SIZE = 64 * 1024

#: Entity references inside a declared entity's replacement text.
_ENTITY_REF = re.compile(r"&([^;&\s]+);")


@dataclass(frozen=True)
class ParserLimits:
    """Hardening ceilings for parsing untrusted XML text.

    All ceilings default to ``None`` (off), so ``ParserLimits()`` changes
    nothing; :meth:`default` returns the recommended serving profile.

    Attributes:
        max_entity_expansion: ceiling on the fully-expanded size (in
            characters) of any single declared entity — the
            billion-laughs guard, enforced at *declaration* time from
            the declared replacement texts, before any expansion work
            happens (``INPUT001``).
        max_entity_depth: ceiling on entity-in-entity nesting depth
            (``&a;`` referencing ``&b;`` referencing … ), also checked
            at declaration time (``INPUT002``).
        max_text_length: ceiling on one contiguous text run, in
            characters (``INPUT003``).
        max_attribute_length: ceiling on a single attribute value, and
            ``max_attributes`` on the attribute count of one element
            (``INPUT004``).
        max_name_length: ceiling on element and attribute names
            (``INPUT005``).
        max_amplification: backstop ratio of parser *output* characters
            to *input* bytes fed so far; trips ``INPUT006`` when output
            exceeds ``amplification_floor + max_amplification × bytes``.
            Catches whatever slips past the static entity analysis
            (e.g. amplification through many small references).
        amplification_floor: grace allowance (characters) before the
            amplification ratio is enforced, so tiny documents with
            ordinary entities never trip it.
    """

    max_entity_expansion: int | None = None
    max_entity_depth: int | None = None
    max_text_length: int | None = None
    max_attribute_length: int | None = None
    max_attributes: int | None = None
    max_name_length: int | None = None
    max_amplification: float | None = None
    amplification_floor: int = 64 * 1024

    def __post_init__(self) -> None:
        for name in (
            "max_entity_expansion",
            "max_entity_depth",
            "max_text_length",
            "max_attribute_length",
            "max_attributes",
            "max_name_length",
        ):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.max_amplification is not None and self.max_amplification <= 0:
            raise ValueError("max_amplification must be positive")
        if self.amplification_floor < 0:
            raise ValueError("amplification_floor must be non-negative")

    @classmethod
    def default(cls) -> "ParserLimits":
        """The recommended profile for serving untrusted streams."""
        return cls(
            max_entity_expansion=64 * 1024,
            max_entity_depth=8,
            max_text_length=4 * 1024 * 1024,
            max_attribute_length=64 * 1024,
            max_attributes=256,
            max_name_length=1024,
            max_amplification=32.0,
        )

    @property
    def unbounded(self) -> bool:
        """``True`` when no ceiling is set (hardening can be skipped)."""
        return (
            self.max_entity_expansion is None
            and self.max_entity_depth is None
            and self.max_text_length is None
            and self.max_attribute_length is None
            and self.max_attributes is None
            and self.max_name_length is None
            and self.max_amplification is None
        )

    @property
    def guards_entities(self) -> bool:
        return self.max_entity_expansion is not None or self.max_entity_depth is not None


class _CollectingHandler(xml.sax.handler.ContentHandler):
    """SAX handler that appends events to a deque drained by the caller.

    With ``limits`` set it doubles as the hardening checkpoint: every
    token the parser delivers is measured before it becomes an event.
    """

    def __init__(
        self,
        sink: deque[Event],
        keep_text: bool,
        limits: ParserLimits | None = None,
    ) -> None:
        super().__init__()
        self._sink = sink
        self._keep_text = keep_text
        self._limits = limits if limits is not None and not limits.unbounded else None
        # Hardening state: parser output volume, the current contiguous
        # text run, and declared-entity expansion metrics.
        self.bytes_fed = 0
        self._chars_out = 0
        self._text_run = 0
        self._entity_sizes: dict[str, int] = {}
        self._entity_depths: dict[str, int] = {}

    def startDocument(self) -> None:
        self._sink.append(StartDocument())

    def endDocument(self) -> None:
        self._sink.append(EndDocument())

    def startElement(self, name: str, attrs) -> None:
        # Element names repeat massively in any real document; interning
        # them makes every downstream label test (`self._label ==
        # event.label`) an identity hit instead of a character compare.
        name = sys.intern(name)
        limits = self._limits
        if limits is not None:
            self._text_run = 0
            self._check_name(name)
            attr_items = attrs.items()
            if (
                limits.max_attributes is not None
                and len(attr_items) > limits.max_attributes
            ):
                raise InputLimitError(
                    f"element <{name}> has {len(attr_items)} attributes "
                    f"(limit {limits.max_attributes})",
                    code="INPUT004",
                    observed=len(attr_items),
                )
            for attr_name, attr_value in attr_items:
                self._check_name(attr_name)
                if (
                    limits.max_attribute_length is not None
                    and len(attr_value) > limits.max_attribute_length
                ):
                    raise InputLimitError(
                        f"attribute {attr_name!r} is {len(attr_value)} "
                        f"characters (limit {limits.max_attribute_length})",
                        code="INPUT004",
                        observed=len(attr_value),
                    )
                self._count_output(len(attr_name) + len(attr_value))
            self._count_output(len(name))
            self._sink.append(StartElement(name, dict(attr_items)))
            return
        self._sink.append(StartElement(name, dict(attrs.items())))

    def endElement(self, name: str) -> None:
        self._text_run = 0
        self._sink.append(EndElement(sys.intern(name)))

    def characters(self, content: str) -> None:
        limits = self._limits
        if limits is not None:
            # Expat splits long runs across calls; cap the *run*, not
            # the chunk, so the ceiling cannot be dodged by buffering.
            self._text_run += len(content)
            if (
                limits.max_text_length is not None
                and self._text_run > limits.max_text_length
            ):
                raise InputLimitError(
                    f"text run of {self._text_run} characters exceeds "
                    f"limit {limits.max_text_length}",
                    code="INPUT003",
                    observed=self._text_run,
                )
            self._count_output(len(content))
        if self._keep_text and content.strip():
            self._sink.append(Text(content))

    # ------------------------------------------------------------------
    # hardening helpers

    def _check_name(self, name: str) -> None:
        ceiling = self._limits.max_name_length
        if ceiling is not None and len(name) > ceiling:
            raise InputLimitError(
                f"name of {len(name)} characters exceeds limit {ceiling}",
                code="INPUT005",
                observed=len(name),
            )

    def _count_output(self, chars: int) -> None:
        limits = self._limits
        if limits.max_amplification is None:
            return
        self._chars_out += chars
        allowed = limits.amplification_floor + limits.max_amplification * max(
            self.bytes_fed, 1
        )
        if self._chars_out > allowed:
            raise InputLimitError(
                f"parser produced {self._chars_out} characters from "
                f"{self.bytes_fed} input bytes (amplification limit "
                f"{limits.max_amplification}x)",
                code="INPUT006",
                observed=self._chars_out,
            )

    def entity_decl(
        self, name, is_parameter_entity, value, base, system_id, public_id, notation
    ) -> None:
        """pyexpat ``EntityDeclHandler``: certify the entity statically.

        ``value`` is the *raw* replacement text with nested references
        unexpanded, so the full expansion size and depth are computable
        bottom-up (expat requires entities to be declared before use)
        without performing any expansion.
        """
        if value is None:  # external entity; blocked from expanding anyway
            return
        limits = self._limits
        size = len(value)
        depth = 1
        for match in _ENTITY_REF.finditer(value):
            ref = match.group(1)
            if ref in self._entity_sizes:
                size += self._entity_sizes[ref] - len(match.group(0))
                depth = max(depth, self._entity_depths[ref] + 1)
        self._entity_sizes[name] = size
        self._entity_depths[name] = depth
        if limits is None:
            return
        if (
            limits.max_entity_expansion is not None
            and size > limits.max_entity_expansion
        ):
            raise InputLimitError(
                f"entity &{name}; expands to {size} characters "
                f"(limit {limits.max_entity_expansion})",
                code="INPUT001",
                observed=size,
            )
        if limits.max_entity_depth is not None and depth > limits.max_entity_depth:
            raise InputLimitError(
                f"entity &{name}; nests {depth} levels deep "
                f"(limit {limits.max_entity_depth})",
                code="INPUT002",
                observed=depth,
            )


def parse_stream(
    source: IO[bytes] | IO[str],
    keep_text: bool = True,
    limits: ParserLimits | None = None,
) -> Iterator[Event]:
    """Incrementally parse an open XML file object into events.

    The file is read in chunks and fed to an incremental SAX parser;
    collected events are yielded between feed steps, so memory use is
    bounded by the chunk size plus SAX's internal buffers, independent of
    document size.

    Args:
        source: a binary or text file object containing one XML document.
        keep_text: when ``False``, character data is dropped, which is the
            pure paper model (structure-only streams).
        limits: untrusted-input hardening ceilings (see
            :class:`ParserLimits`); ``None`` parses trustingly.

    Raises:
        StreamError: if the document is not well-formed XML.
        InputLimitError: a hardening ceiling was exceeded (a
            :class:`StreamError` subclass, so recovery policies apply).
    """
    pending: deque[Event] = deque()
    parser = xml.sax.make_parser()
    parser.setFeature(xml.sax.handler.feature_namespaces, False)
    parser.setFeature(xml.sax.handler.feature_external_ges, False)
    handler = _CollectingHandler(pending, keep_text, limits)
    parser.setContentHandler(handler)
    if limits is not None and limits.guards_entities:
        # The stdlib expat driver exposes no declaration-handler
        # property, so hook the raw pyexpat parser.  feed(b"") forces
        # its lazy creation without consuming input; if the driver ever
        # stops exposing it, hardening degrades to the runtime
        # amplification backstop instead of failing.
        parser.feed(b"")
        raw = getattr(parser, "_parser", None)
        if raw is not None:
            raw.EntityDeclHandler = handler.entity_decl
    try:
        while True:
            chunk = source.read(_CHUNK_SIZE)
            if not chunk:
                break
            if isinstance(chunk, str):
                chunk = chunk.encode("utf-8")
            handler.bytes_fed += len(chunk)
            parser.feed(chunk)
            while pending:
                yield pending.popleft()
        parser.close()
    except xml.sax.SAXParseException as exc:
        # Flush events parsed before the failure point first: a recovery
        # layer downstream can then repair the readable prefix instead of
        # losing the whole chunk.
        while pending:
            yield pending.popleft()
        raise StreamError(f"malformed XML: {exc}") from exc
    except InputLimitError:
        # Hardening trip mid-feed: same contract — the clean prefix is
        # flushed, then the coded error surfaces for recovery to route.
        while pending:
            yield pending.popleft()
        raise
    while pending:
        yield pending.popleft()


def parse_string(
    text: str, keep_text: bool = True, limits: ParserLimits | None = None
) -> Iterator[Event]:
    """Parse an XML document given as a string into an event stream."""
    return parse_stream(
        io.BytesIO(text.encode("utf-8")), keep_text=keep_text, limits=limits
    )


def parse_file(
    path: str | os.PathLike[str],
    keep_text: bool = True,
    limits: ParserLimits | None = None,
) -> Iterator[Event]:
    """Parse an XML file into an event stream, reading it incrementally."""

    def _generate() -> Iterator[Event]:
        with open(path, "rb") as handle:
            yield from parse_stream(handle, keep_text=keep_text, limits=limits)

    return _generate()


def iter_events(
    source: str | os.PathLike[str] | Iterable[Event],
    keep_text: bool = True,
    limits: ParserLimits | None = None,
) -> Iterator[Event]:
    """Normalize heterogeneous inputs into an event iterator.

    Accepts:

    * a string starting with ``<`` — treated as XML text,
    * any other string or a path object — treated as a file path,
    * an iterable of :class:`Event` — passed through unchanged
      (``limits`` does not apply: events are already parsed).
    """
    if isinstance(source, str):
        if source.lstrip().startswith("<"):
            return parse_string(source, keep_text=keep_text, limits=limits)
        return parse_file(source, keep_text=keep_text, limits=limits)
    if isinstance(source, os.PathLike):
        return parse_file(source, keep_text=keep_text, limits=limits)
    return iter(source)


def iter_documents(
    sources: Iterable[str | os.PathLike[str] | Iterable[Event]],
    keep_text: bool = True,
    limits: ParserLimits | None = None,
    report=None,
) -> Iterator[Event]:
    """Concatenate single-document sources into one multi-document stream.

    The serving scenario: each subscriber document arrives as its own
    text/file, and one poisoned document (malformed, or tripping a
    :class:`ParserLimits` ceiling) must not kill the connection.  A
    per-document parse failure files a record in ``report`` (an
    :class:`~repro.xmlstream.recovery.ErrorReport`, action
    ``"parse_error"``) and the stream continues with the next source;
    downstream the poisoned document looks truncated, which the recovery
    policies quarantine (``skip``) or auto-close (``repair``).
    """
    for index, source in enumerate(sources):
        try:
            yield from iter_events(source, keep_text=keep_text, limits=limits)
        except StreamError as exc:
            if report is not None:
                report.add(index, str(exc), "parse_error")
