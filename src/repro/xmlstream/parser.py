"""Parsing XML text into event streams.

Two entry points are provided:

* :func:`parse_string` / :func:`parse_file` — built on :mod:`xml.sax`, the
  very API the paper models its streams after.  The SAX callbacks are
  bridged into a pull-style generator through an incremental feed loop so
  that arbitrarily large files are processed with bounded memory.
* :func:`iter_events` — convenience dispatcher accepting strings, paths or
  already-iterable event sequences.

All parsers emit the paper's envelope: a :class:`~repro.xmlstream.events.
StartDocument` before the root element and an :class:`~repro.xmlstream.
events.EndDocument` after it.
"""

from __future__ import annotations

import io
import os
import xml.sax
import xml.sax.handler
from collections import deque
from typing import IO, Iterable, Iterator

from ..errors import StreamError
from .events import EndDocument, EndElement, Event, StartDocument, StartElement, Text

#: Number of bytes handed to the SAX parser per feed step.
_CHUNK_SIZE = 64 * 1024


class _CollectingHandler(xml.sax.handler.ContentHandler):
    """SAX handler that appends events to a deque drained by the caller."""

    def __init__(self, sink: deque[Event], keep_text: bool) -> None:
        super().__init__()
        self._sink = sink
        self._keep_text = keep_text

    def startDocument(self) -> None:
        self._sink.append(StartDocument())

    def endDocument(self) -> None:
        self._sink.append(EndDocument())

    def startElement(self, name: str, attrs) -> None:
        self._sink.append(StartElement(name, dict(attrs.items())))

    def endElement(self, name: str) -> None:
        self._sink.append(EndElement(name))

    def characters(self, content: str) -> None:
        if self._keep_text and content.strip():
            self._sink.append(Text(content))


def parse_stream(source: IO[bytes] | IO[str], keep_text: bool = True) -> Iterator[Event]:
    """Incrementally parse an open XML file object into events.

    The file is read in chunks and fed to an incremental SAX parser;
    collected events are yielded between feed steps, so memory use is
    bounded by the chunk size plus SAX's internal buffers, independent of
    document size.

    Args:
        source: a binary or text file object containing one XML document.
        keep_text: when ``False``, character data is dropped, which is the
            pure paper model (structure-only streams).

    Raises:
        StreamError: if the document is not well-formed XML.
    """
    pending: deque[Event] = deque()
    parser = xml.sax.make_parser()
    parser.setFeature(xml.sax.handler.feature_namespaces, False)
    parser.setFeature(xml.sax.handler.feature_external_ges, False)
    parser.setContentHandler(_CollectingHandler(pending, keep_text))
    try:
        while True:
            chunk = source.read(_CHUNK_SIZE)
            if not chunk:
                break
            if isinstance(chunk, str):
                chunk = chunk.encode("utf-8")
            parser.feed(chunk)
            while pending:
                yield pending.popleft()
        parser.close()
    except xml.sax.SAXParseException as exc:
        # Flush events parsed before the failure point first: a recovery
        # layer downstream can then repair the readable prefix instead of
        # losing the whole chunk.
        while pending:
            yield pending.popleft()
        raise StreamError(f"malformed XML: {exc}") from exc
    while pending:
        yield pending.popleft()


def parse_string(text: str, keep_text: bool = True) -> Iterator[Event]:
    """Parse an XML document given as a string into an event stream."""
    return parse_stream(io.BytesIO(text.encode("utf-8")), keep_text=keep_text)


def parse_file(path: str | os.PathLike[str], keep_text: bool = True) -> Iterator[Event]:
    """Parse an XML file into an event stream, reading it incrementally."""

    def _generate() -> Iterator[Event]:
        with open(path, "rb") as handle:
            yield from parse_stream(handle, keep_text=keep_text)

    return _generate()


def iter_events(source: str | os.PathLike[str] | Iterable[Event], keep_text: bool = True) -> Iterator[Event]:
    """Normalize heterogeneous inputs into an event iterator.

    Accepts:

    * a string starting with ``<`` — treated as XML text,
    * any other string or a path object — treated as a file path,
    * an iterable of :class:`Event` — passed through unchanged.
    """
    if isinstance(source, str):
        if source.lstrip().startswith("<"):
            return parse_string(source, keep_text=keep_text)
        return parse_file(source, keep_text=keep_text)
    if isinstance(source, os.PathLike):
        return parse_file(source, keep_text=keep_text)
    return iter(source)
