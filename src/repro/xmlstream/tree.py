"""In-memory XML trees.

Materialized trees are what the *non*-streaming baselines (Saxon-like DOM
evaluation, Fxgrep-like tree automata) operate on, and they double as the
semantics oracle for differential testing: the declarative rpeq semantics
is easiest to state — and trust — over an explicit tree.

A :class:`Node` records its label, children, parent and two bookkeeping
fields used everywhere in the library:

* ``position`` — index of the node's start tag in document order, used to
  report results in the order the output transducer must produce them;
* ``depth`` — tree level (root ``$`` is at depth 0), used by complexity
  experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import StreamError
from .events import (
    DOCUMENT_LABEL,
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)


@dataclass(eq=False)
class Node:
    """One element of a materialized XML tree.

    Nodes compare by identity: two distinct ``<a/>`` elements are distinct
    result nodes even if structurally equal, exactly as in the XPath data
    model.
    """

    label: str
    position: int
    depth: int
    parent: "Node | None" = None
    children: list["Node"] = field(default_factory=list)
    text: str = ""

    def iter_descendants(self) -> Iterator["Node"]:
        """Yield all descendants (excluding ``self``) in document order."""
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_subtree(self) -> Iterator["Node"]:
        """Yield ``self`` and all descendants in document order."""
        yield self
        yield from self.iter_descendants()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node(<{self.label}> @{self.position}, depth={self.depth})"


class Document:
    """A fully materialized XML document.

    Attributes:
        root: the virtual ``$`` node; its children are the document's
            top-level elements (exactly one for well-formed XML, but the
            data model tolerates forests for testing convenience).
    """

    def __init__(self, root: Node) -> None:
        if root.label != DOCUMENT_LABEL:
            raise ValueError("document root must carry the '$' label")
        self.root = root

    @property
    def size(self) -> int:
        """Number of element nodes, excluding the virtual root."""
        return sum(1 for _ in self.root.iter_descendants())

    @property
    def depth(self) -> int:
        """Maximum node depth (the virtual root is depth 0)."""
        return max((node.depth for node in self.root.iter_subtree()), default=0)

    def nodes(self) -> list[Node]:
        """All element nodes in document order (excluding the root)."""
        return list(self.root.iter_descendants())

    def events(self) -> Iterator[Event]:
        """Re-stream the document in document tree order (Sec. II.1)."""

        def walk(node: Node) -> Iterator[Event]:
            yield StartElement(node.label)
            if node.text:
                yield Text(node.text)
            for child in node.children:
                yield from walk(child)
            yield EndElement(node.label)

        yield StartDocument()
        for child in self.root.children:
            yield from walk(child)
        yield EndDocument()


def build_document(events: Iterable[Event]) -> Document:
    """Materialize an event stream into a :class:`Document`.

    This is what the buffering baselines must do before evaluating — the
    cost SPEX avoids.

    Raises:
        StreamError: if the stream is not well-formed.
    """
    root = Node(DOCUMENT_LABEL, position=0, depth=0)
    stack = [root]
    position = 0
    saw_start = False
    saw_end = False
    for event in events:
        if isinstance(event, StartDocument):
            saw_start = True
        elif isinstance(event, EndDocument):
            if len(stack) != 1:
                raise StreamError("</$> with unclosed elements")
            saw_end = True
        elif isinstance(event, StartElement):
            if not saw_start or saw_end:
                raise StreamError("element outside document envelope")
            position += 1
            node = Node(event.label, position=position, depth=len(stack), parent=stack[-1])
            stack[-1].children.append(node)
            stack.append(node)
        elif isinstance(event, EndElement):
            if len(stack) == 1 or stack[-1].label != event.label:
                raise StreamError(f"mismatched </{event.label}>")
            stack.pop()
        elif isinstance(event, Text):
            if len(stack) > 1:
                stack[-1].text += event.content
    if saw_start and not saw_end:
        raise StreamError("stream ended before </$>")
    return Document(root)
