"""Multi-document stream utilities for SDI pipelines.

The paper's selective-dissemination scenario (Sec. I) processes a
*sequence* of documents arriving on one connection.  These helpers split
such a concatenated stream into per-document event streams and build
concatenated streams from document sources — all lazily, so an unbounded
feed of documents is processed one document at a time with bounded
memory.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import StreamError
from .events import EndDocument, Event, StartDocument


def split_documents(events: Iterable[Event]) -> Iterator[Iterator[Event]]:
    """Split a concatenated multi-document stream into documents.

    Yields one lazy event iterator per ``<$> ... </$>`` envelope.  Each
    inner iterator must be consumed (or at least abandoned) before
    advancing to the next — the split is single-pass.  Consumers that
    need random access can wrap each document in ``list(...)``.

    Raises:
        StreamError: on events between documents or a missing envelope.
    """
    source = iter(events)

    def one_document(first: Event) -> Iterator[Event]:
        yield first
        for event in source:
            yield event
            if isinstance(event, EndDocument):
                return
        raise StreamError("stream ended before </$>")

    while True:
        opener = next(source, None)
        if opener is None:
            return
        if not isinstance(opener, StartDocument):
            raise StreamError(f"expected <$> between documents, got {opener}")
        document = one_document(opener)
        yield document
        # Drain whatever the consumer left unread so the stream is
        # positioned at the next document boundary.
        for _ in document:
            pass


def concat_documents(documents: Iterable[Iterable[Event]]) -> Iterator[Event]:
    """Concatenate per-document event streams into one multi-doc stream.

    The inverse of :func:`split_documents`; no separators are inserted —
    the ``<$>``/``</$>`` envelopes delimit documents.
    """
    for document in documents:
        yield from document


def count_documents(events: Iterable[Event]) -> int:
    """Number of complete documents in a concatenated stream."""
    return sum(1 for _ in split_documents(events) if True)
