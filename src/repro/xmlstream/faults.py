"""Seeded fault injection for robustness testing.

The recovery layer (:mod:`repro.xmlstream.recovery`) and the resource
guards (:mod:`repro.limits`) claim that no corrupted stream can hang the
engine, crash it with anything but the documented errors, or silently
change results on clean documents.  :class:`FaultInjector` manufactures
the corrupted streams those claims are tested against: every corruption
is seeded and therefore reproducible from its ``(seed, kind)`` pair, so
a failing soak trial can be replayed exactly.

All injectors are pure — they take an event list and return a new one,
annotated with a :class:`Fault` describing what was done where.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..core.clock import Clock, as_clock
from .events import EndDocument, EndElement, Event, StartDocument, StartElement, Text

#: Every corruption kind :meth:`FaultInjector.corrupt` can pick from.
FAULT_KINDS = (
    "truncate",
    "drop_tag",
    "duplicate_tag",
    "swap_tags",
    "interleave_garbage",
    "flip_label",
)

#: Runtime (transport-level) fault kinds.  Unlike :data:`FAULT_KINDS`
#: these do not corrupt event *content* — they break the *delivery*:
#: the stream raises, hangs, or crawls mid-flight, which is what the
#: supervisor (:mod:`repro.core.supervisor`) and the serving deadlines
#: (:mod:`repro.core.serving`) exist to survive.
RUNTIME_FAULT_KINDS = ("transient_error", "stall", "slow_source")

#: Adversarial *payload* fault kinds: well-formed but hostile input
#: (amplification bombs) that only the parser hardening
#: (:class:`~repro.xmlstream.parser.ParserLimits`) defends against.
ADVERSARIAL_FAULT_KINDS = ("entity_bomb",)


@dataclass(frozen=True)
class Fault:
    """Provenance of one injected corruption.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        index: event offset at which the corruption was applied.
        detail: human-readable description (for soak-failure replay).
    """

    kind: str
    index: int
    detail: str


class FaultInjector:
    """Deterministic stream corrupter.

    Args:
        seed: seeds the private :class:`random.Random`; two injectors
            with the same seed apply identical corruptions.
        labels: label pool for garbage tags and label flips.
        clock: time source for the latency faults (``stall``,
            ``slow_source``); tests pass a
            :class:`~repro.core.clock.FakeClock` so injected latency is
            simulated, not slept.
    """

    def __init__(
        self,
        seed: int = 0,
        labels: Sequence[str] = ("a", "b", "c", "zz"),
        clock: Clock | None = None,
    ) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.labels = tuple(labels)
        self.clock = as_clock(clock)

    def for_shard(self, index: int) -> "FaultInjector":
        """Fresh injector with a seed derived for worker ``index``.

        Multi-process chaos soaks must not hand every shard worker the
        same RNG: forked workers would replay identical corruption
        schedules, and spawned workers would share no schedule at all
        (each pickled copy re-rolls from its own position).  Deriving
        ``seed * P + index`` (``P`` prime, far above any shard count)
        gives every worker its own stream that is a pure function of
        ``(seed, index)`` — reproducible regardless of start method,
        fork timing, or how many faults other shards drew.
        """
        if index < 0:
            raise ValueError(f"shard index must be non-negative, got {index}")
        return FaultInjector(
            seed=self.seed * 1_000_003 + index,
            labels=self.labels,
            clock=self.clock,
        )

    # ------------------------------------------------------------------
    # individual faults

    def truncate(self, events: Iterable[Event]) -> tuple[list[Event], Fault]:
        """Cut the stream mid-document (a dropped connection)."""
        stream = list(events)
        if len(stream) < 2:
            return stream, Fault("truncate", len(stream), "stream too short to cut")
        cut = self.rng.randrange(1, len(stream))
        return stream[:cut], Fault("truncate", cut, f"cut after {cut} of {len(stream)} events")

    def drop_tag(self, events: Iterable[Event]) -> tuple[list[Event], Fault]:
        """Delete one structural event (lost packet)."""
        stream = list(events)
        index = self._pick_structural(stream)
        if index is None:
            return self.truncate(stream)
        dropped = stream[index]
        return (
            stream[:index] + stream[index + 1 :],
            Fault("drop_tag", index, f"dropped {dropped} at {index}"),
        )

    def duplicate_tag(self, events: Iterable[Event]) -> tuple[list[Event], Fault]:
        """Replay one structural event (retransmission bug)."""
        stream = list(events)
        index = self._pick_structural(stream)
        if index is None:
            return self.truncate(stream)
        duplicated = stream[index]
        return (
            stream[: index + 1] + [duplicated] + stream[index + 1 :],
            Fault("duplicate_tag", index, f"duplicated {duplicated} at {index}"),
        )

    def swap_tags(self, events: Iterable[Event]) -> tuple[list[Event], Fault]:
        """Swap two adjacent events (reordered delivery)."""
        stream = list(events)
        if len(stream) < 2:
            return self.truncate(stream)
        index = self.rng.randrange(0, len(stream) - 1)
        stream[index], stream[index + 1] = stream[index + 1], stream[index]
        return stream, Fault(
            "swap_tags", index, f"swapped events {index} and {index + 1}"
        )

    def interleave_garbage(self, events: Iterable[Event]) -> tuple[list[Event], Fault]:
        """Insert orphan tags or stray text (cross-talk on the wire)."""
        stream = list(events)
        index = self.rng.randrange(0, len(stream) + 1)
        label = self.rng.choice(self.labels)
        garbage: list[Event] = self.rng.choice(
            [
                [EndElement(label)],
                [StartElement(label)],
                [Text("\x00garbage\x00")],
                [EndDocument()],
                [StartElement(label), EndElement(label), EndElement(label)],
            ]
        )
        return (
            stream[:index] + garbage + stream[index:],
            Fault(
                "interleave_garbage",
                index,
                f"inserted {[str(g) for g in garbage]} at {index}",
            ),
        )

    def flip_label(self, events: Iterable[Event]) -> tuple[list[Event], Fault]:
        """Rename one tag (bit-flip / encoding corruption)."""
        stream = list(events)
        index = self._pick_structural(stream)
        if index is None:
            return self.truncate(stream)
        event = stream[index]
        assert isinstance(event, (StartElement, EndElement))
        others = [l for l in self.labels if l != event.label] or [event.label + "x"]
        new_label = self.rng.choice(others)
        flipped: Event = (
            StartElement(new_label, event.attributes)
            if isinstance(event, StartElement)
            else EndElement(new_label)
        )
        stream[index] = flipped
        return stream, Fault(
            "flip_label", index, f"{event} -> {flipped} at {index}"
        )

    # ------------------------------------------------------------------
    # runtime faults (delivery breaks, not content corruption)

    def transient_error(
        self, events: Iterable[Event], fail_after: int | None = None
    ) -> tuple[Iterator[Event], Fault]:
        """Stream that raises :class:`IOError` after ``fail_after`` events.

        Models a dropped connection at the transport layer: the events
        delivered before the break are perfectly well-formed, then the
        iterator raises mid-document.  ``fail_after`` defaults to a
        seeded mid-stream position.
        """
        stream = list(events)
        k = (
            fail_after
            if fail_after is not None
            else self.rng.randrange(1, max(2, len(stream)))
        )
        fault = Fault("transient_error", k, f"IOError after {k} events")

        def generate() -> Iterator[Event]:
            for index, event in enumerate(stream):
                if index == k:
                    raise IOError(f"injected transient error after {k} events")
                yield event
            if k >= len(stream):
                raise IOError(f"injected transient error after {len(stream)} events")

        return generate(), fault

    def stall(
        self,
        events: Iterable[Event],
        stall_after: int | None = None,
        stall_seconds: float = 3600.0,
    ) -> tuple[Iterator[Event], Fault]:
        """Stream that hangs after ``stall_after`` events.

        Models a silent peer: no error, no data — the iterator just
        stops returning for ``stall_seconds`` (effectively forever at the
        default), which only a heartbeat watchdog can detect.
        """
        stream = list(events)
        k = (
            stall_after
            if stall_after is not None
            else self.rng.randrange(1, max(2, len(stream)))
        )
        fault = Fault("stall", k, f"hang {stall_seconds}s after {k} events")
        clock = self.clock

        def generate() -> Iterator[Event]:
            for index, event in enumerate(stream):
                if index == k:
                    clock.sleep(stall_seconds)
                yield event

        return generate(), fault

    def slow_source(
        self,
        events: Iterable[Event],
        delay: float = 0.1,
        every: int = 1,
    ) -> tuple[Iterator[Event], Fault]:
        """Stream that crawls: ``delay`` seconds before every ``every``-th
        event.

        Models a congested or throttled peer.  Unlike :meth:`stall` the
        stream keeps making progress, so only a *deadline*
        (:class:`~repro.core.serving.ServingPolicy`) — not a heartbeat
        watchdog — bounds the damage.  Latency is charged to the
        injector's clock, so with a shared
        :class:`~repro.core.clock.FakeClock` the serving deadlines see
        the simulated time without any real sleeping.
        """
        if every < 1:
            raise ValueError("every must be positive")
        stream = list(events)
        fault = Fault(
            "slow_source", 0, f"{delay}s delay every {every} event(s)"
        )
        clock = self.clock

        def generate() -> Iterator[Event]:
            for index, event in enumerate(stream):
                if index % every == 0:
                    clock.sleep(delay)
                yield event

        return generate(), fault

    # ------------------------------------------------------------------
    # adversarial payloads (hostile but well-formed input)

    def entity_bomb(
        self,
        depth: int = 8,
        fanout: int = 10,
        label: str = "bomb",
    ) -> tuple[str, Fault]:
        """Raw billion-laughs document: ``fanout**depth`` amplification.

        Returns XML *text* (entity expansion happens at the parser, so
        the bomb cannot be expressed as an event list).  The top entity
        expands to ``3 * fanout**depth`` characters from a few hundred
        bytes of input — feed it through
        :func:`~repro.xmlstream.parser.parse_stream` with
        :class:`~repro.xmlstream.parser.ParserLimits` armed and the
        declaration-time guard rejects it before any expansion.
        """
        if depth < 1 or fanout < 1:
            raise ValueError("depth and fanout must be positive")
        lines = ["<?xml version=\"1.0\"?>", f"<!DOCTYPE {label} ["]
        lines.append("<!ENTITY e0 \"lol\">")
        for level in range(1, depth + 1):
            refs = f"&e{level - 1};" * fanout
            lines.append(f"<!ENTITY e{level} \"{refs}\">")
        lines.append("]>")
        lines.append(f"<{label}>&e{depth};</{label}>")
        text = "\n".join(lines)
        fault = Fault(
            "entity_bomb",
            0,
            f"{len(text)} input bytes expanding to ~{3 * fanout ** depth} "
            f"characters ({fanout}^{depth} amplification)",
        )
        return text, fault

    # ------------------------------------------------------------------
    # driver

    def corrupt(
        self, events: Iterable[Event], kind: str | None = None
    ) -> tuple[list[Event], Fault]:
        """Apply one corruption, randomly chosen unless ``kind`` is given.

        Note that a corruption does not always break well-formedness
        (dropping a :class:`Text` event, or swapping two independent
        events, leaves a valid stream) — soak tests must branch on
        :func:`~repro.xmlstream.validate.is_well_formed` rather than
        assume every corrupted stream is rejected.
        """
        kind = kind if kind is not None else self.rng.choice(FAULT_KINDS)
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r} (expected one of {FAULT_KINDS})")
        return getattr(self, kind)(events)

    def corrupt_document(
        self,
        documents: Sequence[Sequence[Event]],
        victim: int,
        kind: str | None = None,
    ) -> tuple[list[Event], Fault]:
        """Corrupt one document of a multi-document stream.

        Returns the concatenated stream with only ``documents[victim]``
        corrupted — the canonical SDI robustness scenario: one bad
        subscriber document inside an otherwise healthy feed.
        """
        corrupted, fault = self.corrupt(list(documents[victim]), kind)
        stream: list[Event] = []
        for i, document in enumerate(documents):
            stream.extend(corrupted if i == victim else document)
        return stream, fault

    # ------------------------------------------------------------------
    # helpers

    def _pick_structural(self, stream: list[Event]) -> int | None:
        """Index of a random element tag (not envelope, not text)."""
        candidates = [
            i
            for i, event in enumerate(stream)
            if isinstance(event, (StartElement, EndElement))
        ]
        if not candidates:
            return None
        return self.rng.choice(candidates)


class FlakySource:
    """Reconnectable event source with a scripted failure schedule.

    The supervisor's contract is "survive transient source failures";
    this is the deterministic source those tests run against.  Each
    :meth:`connect` returns a fresh replay of the same event sequence —
    the reconnect semantics :meth:`SpexEngine.resume
    <repro.core.engine.SpexEngine.resume>` requires — and connection
    ``i`` follows ``script[i]``:

    * ``None`` — clean replay;
    * ``("error", k)`` — raise :class:`IOError` after ``k`` events;
    * ``("stall", k)`` — hang (sleep ``stall_seconds``) after ``k``
      events, then continue.

    Connections beyond the end of the script are clean, so a finite
    script models "flaky for a while, then healthy".  The instance is
    callable, so it can be passed directly as a supervisor
    ``source_factory``.
    """

    def __init__(
        self,
        events: Iterable[Event],
        script: Sequence[tuple[str, int] | None] = (),
        stall_seconds: float = 3600.0,
        clock: Clock | None = None,
    ) -> None:
        self.events = list(events)
        self.script = list(script)
        self.stall_seconds = stall_seconds
        self.clock = as_clock(clock)
        #: number of connections opened so far
        self.connects = 0

    def connect(self) -> Iterator[Event]:
        """Open a fresh replay, applying this connection's script entry."""
        index = self.connects
        self.connects += 1
        entry = self.script[index] if index < len(self.script) else None
        return self._replay(entry, index)

    def __call__(self) -> Iterator[Event]:
        return self.connect()

    def _replay(
        self, entry: tuple[str, int] | None, connection: int
    ) -> Iterator[Event]:
        if entry is None:
            yield from self.events
            return
        mode, k = entry
        if mode not in ("error", "stall"):
            raise ValueError(f"unknown flaky-source mode {mode!r}")
        for index, event in enumerate(self.events):
            if index == k:
                if mode == "error":
                    raise IOError(
                        f"injected transient error on connection {connection} "
                        f"after {k} events"
                    )
                self.clock.sleep(self.stall_seconds)
            yield event
        if mode == "error" and k >= len(self.events):
            raise IOError(
                f"injected transient error on connection {connection} "
                f"after {len(self.events)} events"
            )
