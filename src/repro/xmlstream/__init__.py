"""XML stream substrate: events, parsing, serialization, trees, statistics.

This package implements the data model of Sec. II.1 of the paper — XML
streams as sequences of document messages — together with everything the
rest of the library needs to produce, consume, check and materialize such
streams.
"""

from .events import (
    DOCUMENT_LABEL,
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
    events_from_tags,
    is_document_boundary,
    label_of,
    tags_from_events,
)
from .documents import concat_documents, count_documents, split_documents
from .faults import (
    ADVERSARIAL_FAULT_KINDS,
    FAULT_KINDS,
    RUNTIME_FAULT_KINDS,
    Fault,
    FaultInjector,
    FlakySource,
)
from .offsets import CountingReader, StreamCursor, skip_events
from .parser import (
    ParserLimits,
    iter_documents,
    iter_events,
    parse_file,
    parse_stream,
    parse_string,
)
from .recovery import (
    ErrorRecord,
    ErrorReport,
    RecoveryPolicy,
    as_policy,
    recovered_documents,
    recovering,
)
from .serializer import serialize, write_events
from .stats import StreamStats, measure, observed
from .tree import Document, Node, build_document
from .validate import checked, is_well_formed

__all__ = [
    "ADVERSARIAL_FAULT_KINDS",
    "CountingReader",
    "DOCUMENT_LABEL",
    "Document",
    "EndDocument",
    "EndElement",
    "ErrorRecord",
    "ErrorReport",
    "Event",
    "FAULT_KINDS",
    "Fault",
    "FaultInjector",
    "FlakySource",
    "Node",
    "ParserLimits",
    "RUNTIME_FAULT_KINDS",
    "RecoveryPolicy",
    "StartDocument",
    "StartElement",
    "StreamCursor",
    "StreamStats",
    "Text",
    "as_policy",
    "build_document",
    "checked",
    "concat_documents",
    "count_documents",
    "events_from_tags",
    "is_document_boundary",
    "is_well_formed",
    "iter_documents",
    "iter_events",
    "label_of",
    "measure",
    "observed",
    "parse_file",
    "parse_stream",
    "parse_string",
    "recovered_documents",
    "recovering",
    "serialize",
    "skip_events",
    "split_documents",
    "tags_from_events",
    "write_events",
]
