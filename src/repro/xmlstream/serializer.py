"""Serializing event streams back to XML text.

The serializer is the inverse of :mod:`repro.xmlstream.parser`: it turns an
event stream (or a result fragment emitted by the SPEX output transducer)
back into markup.  It is deliberately minimal — attributes and text are
escaped, the document envelope is dropped, and an optional indent mode
exists for human inspection in examples.
"""

from __future__ import annotations

from typing import IO, Iterable

from ..errors import StreamError
from .events import EndDocument, EndElement, Event, StartDocument, StartElement, Text

_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {**_ESCAPES, '"': "&quot;"}


def escape_text(value: str) -> str:
    """Escape character data for inclusion in XML text content."""
    for raw, cooked in _ESCAPES.items():
        value = value.replace(raw, cooked)
    return value


def escape_attribute(value: str) -> str:
    """Escape a value for inclusion in a double-quoted attribute."""
    for raw, cooked in _ATTR_ESCAPES.items():
        value = value.replace(raw, cooked)
    return value


def _start_tag(event: StartElement) -> str:
    if not event.attributes:
        return f"<{event.label}>"
    rendered = " ".join(
        f'{name}="{escape_attribute(value)}"' for name, value in event.attributes.items()
    )
    return f"<{event.label} {rendered}>"


def write_events(events: Iterable[Event], out: IO[str], indent: str | None = None) -> None:
    """Write an event stream as XML markup to a text file object.

    Args:
        events: the stream; document boundary events are skipped.
        out: destination text stream.
        indent: when given (e.g. ``"  "``), pretty-print with one line per
            tag; when ``None``, produce compact markup with no whitespace.

    Raises:
        StreamError: on an end tag that does not match the open element.
    """
    depth = 0
    open_labels: list[str] = []
    for event in events:
        if isinstance(event, (StartDocument, EndDocument)):
            continue
        if isinstance(event, StartElement):
            if indent is not None:
                out.write(indent * depth)
            out.write(_start_tag(event))
            if indent is not None:
                out.write("\n")
            open_labels.append(event.label)
            depth += 1
        elif isinstance(event, EndElement):
            if not open_labels or open_labels[-1] != event.label:
                raise StreamError(
                    f"cannot serialize: </{event.label}> does not close "
                    f"<{open_labels[-1] if open_labels else '?'}>"
                )
            open_labels.pop()
            depth -= 1
            if indent is not None:
                out.write(indent * depth)
            out.write(f"</{event.label}>")
            if indent is not None:
                out.write("\n")
        elif isinstance(event, Text):
            if indent is not None:
                out.write(indent * depth)
            out.write(escape_text(event.content))
            if indent is not None:
                out.write("\n")
    if open_labels:
        raise StreamError(f"cannot serialize: unclosed elements {open_labels}")


def serialize(events: Iterable[Event], indent: str | None = None) -> str:
    """Return the XML markup for an event stream as a string."""
    import io

    buffer = io.StringIO()
    write_events(events, buffer, indent=indent)
    return buffer.getvalue()
