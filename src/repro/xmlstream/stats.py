"""Stream statistics.

The complexity results of the paper are stated in terms of the stream size
``s`` (number of messages) and the document depth ``d``.  The helpers here
compute both — either over a finite stream or incrementally, so unbounded
streams can be monitored while being queried.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .events import EndDocument, EndElement, Event, StartDocument, StartElement, Text


@dataclass
class StreamStats:
    """Aggregate statistics of an event stream.

    Attributes:
        messages: total number of events seen (the paper's ``s``).
        elements: number of element nodes (start tags).
        max_depth: deepest tree level reached (the paper's ``d``); the
            virtual root counts as level 0.
        distinct_labels: number of distinct element labels.
        text_bytes: total character-data size.
    """

    messages: int = 0
    elements: int = 0
    max_depth: int = 0
    distinct_labels: int = 0
    text_bytes: int = 0

    _labels: set[str] | None = None
    _depth: int = 0

    def observe(self, event: Event) -> None:
        """Fold one event into the statistics."""
        if self._labels is None:
            self._labels = set()
        self.messages += 1
        if isinstance(event, StartElement):
            self.elements += 1
            self._depth += 1
            self.max_depth = max(self.max_depth, self._depth)
            self._labels.add(event.label)
            self.distinct_labels = len(self._labels)
        elif isinstance(event, EndElement):
            self._depth -= 1
        elif isinstance(event, Text):
            self.text_bytes += len(event.content)
        elif isinstance(event, (StartDocument, EndDocument)):
            pass


def measure(events: Iterable[Event]) -> StreamStats:
    """Consume a finite stream and return its statistics."""
    stats = StreamStats()
    for event in events:
        stats.observe(event)
    return stats


def observed(events: Iterable[Event], stats: StreamStats) -> Iterator[Event]:
    """Tee a stream through a :class:`StreamStats` accumulator.

    Useful to measure a stream while it is being queried, without a second
    pass — essential for unbounded streams.
    """
    for event in events:
        stats.observe(event)
        yield event
