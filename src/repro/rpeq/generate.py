"""Random rpeq generation for differential testing and benchmarks.

The generator is seeded and size-bounded so failures shrink to small,
reproducible queries.  Weights are biased toward the constructs that stress
the engine most (wildcard closure, qualifiers); tests tune them per suite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .ast import (
    Concat,
    Label,
    OptionalExpr,
    Plus,
    Qualifier,
    Rpeq,
    Star,
    Union,
    WILDCARD,
)


@dataclass
class GeneratorConfig:
    """Tunable parameters for :func:`random_rpeq`.

    Attributes:
        labels: pool of element names to draw from (the wildcard is added
            separately via ``wildcard_weight``).
        max_depth: bound on AST nesting.
        wildcard_weight: probability that a label step is the wildcard.
        allow_qualifiers: include ``E[F]`` nodes.
        allow_closures: include ``+``/``*`` steps.
        allow_unions: include ``|`` nodes.
        allow_optionals: include ``?`` nodes.
    """

    labels: tuple[str, ...] = ("a", "b", "c", "d")
    max_depth: int = 4
    wildcard_weight: float = 0.25
    allow_qualifiers: bool = True
    allow_closures: bool = True
    allow_unions: bool = True
    allow_optionals: bool = True
    weights: dict[str, float] = field(default_factory=dict)


_DEFAULT_WEIGHTS = {
    "label": 4.0,
    "closure": 2.0,
    "concat": 3.0,
    "union": 1.0,
    "optional": 0.5,
    "qualifier": 1.5,
}


def _pick_label(rng: random.Random, config: GeneratorConfig) -> Label:
    if rng.random() < config.wildcard_weight:
        return Label(WILDCARD)
    return Label(rng.choice(config.labels))


def random_rpeq(rng: random.Random, config: GeneratorConfig | None = None, depth: int = 0) -> Rpeq:
    """Draw a random rpeq AST from a seeded :class:`random.Random`."""
    config = config or GeneratorConfig()
    weights = dict(_DEFAULT_WEIGHTS)
    weights.update(config.weights)
    choices: list[tuple[str, float]] = [("label", weights["label"])]
    if config.allow_closures:
        choices.append(("closure", weights["closure"]))
    if depth < config.max_depth:
        choices.append(("concat", weights["concat"]))
        if config.allow_unions:
            choices.append(("union", weights["union"]))
        if config.allow_optionals:
            choices.append(("optional", weights["optional"]))
        if config.allow_qualifiers:
            choices.append(("qualifier", weights["qualifier"]))
    total = sum(weight for _, weight in choices)
    roll = rng.random() * total
    for kind, weight in choices:
        roll -= weight
        if roll <= 0:
            break
    if kind == "label":
        return _pick_label(rng, config)
    if kind == "closure":
        label = _pick_label(rng, config)
        return Plus(label) if rng.random() < 0.5 else Star(label)
    if kind == "concat":
        return Concat(
            random_rpeq(rng, config, depth + 1), random_rpeq(rng, config, depth + 1)
        )
    if kind == "union":
        return Union(
            random_rpeq(rng, config, depth + 1), random_rpeq(rng, config, depth + 1)
        )
    if kind == "optional":
        return OptionalExpr(random_rpeq(rng, config, depth + 1))
    return Qualifier(
        random_rpeq(rng, config, depth + 1), random_rpeq(rng, config, depth + 1)
    )


def query_family(prefix_steps: int, qualifiers: int) -> Rpeq:
    """Deterministic query family used by the compile-time benchmark (E7).

    Produces ``_*.a1[b].a2[b] ... an[b]`` with ``prefix_steps`` labeled
    steps, the first ``qualifiers`` of which carry a ``[b]`` qualifier —
    a family whose length grows linearly and predictably.
    """
    expr: Rpeq = Star(Label(WILDCARD))
    for index in range(prefix_steps):
        step: Rpeq = Label(f"s{index}")
        if index < qualifiers:
            step = Qualifier(step, Label("b"))
        expr = Concat(expr, step)
    return expr
