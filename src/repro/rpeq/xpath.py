"""Translating the XPath forward fragment into rpeq.

The paper (Sec. II.2) notes that rpeq covers the XPath fragment with only
the forward axes ``child`` and ``descendant`` and structural predicates.
This module implements that translation so users can write familiar XPath:

    //country[province]/name        ->  _*.country[province].name
    /a/b//c                         ->  a.b._*.c
    //a[.//b]/c                     ->  _*.a[_*.b].c

Supported:

* steps separated by ``/`` and ``//``;
* name tests and ``*`` (mapped to the rpeq wildcard ``_``);
* explicit ``child::`` and ``descendant::`` / ``descendant-or-self::``
  axes, plus ``self::node()`` and the ``.`` abbreviation;
* structural predicates ``[relative-path]``, nested arbitrarily, and
  predicate disjunction via the XPath union ``|`` inside predicates.

Anything else — reverse axes, attributes, functions, positional or value
predicates — raises :class:`~repro.errors.UnsupportedFeatureError` with a
message naming the offending construct.  (The rewriting of reverse axes
into forward ones cited by the paper [Olteanu et al., "XPath: Looking
Forward"] applies at the XPath level and is out of scope here.)
"""

from __future__ import annotations

import re

from ..errors import QuerySyntaxError, UnsupportedFeatureError
from .ast import (
    WILDCARD,
    Concat,
    Empty,
    Following,
    Label,
    Plus,
    Preceding,
    Qualifier,
    Rpeq,
    Star,
    Union,
)

_NAME = re.compile(r"[A-Za-z_][\w.\-]*")

_UNSUPPORTED_AXES = (
    "ancestor-or-self::",
    "preceding-sibling::",
    "following-sibling::",
    "attribute::",
    "namespace::",
)


#: predicate-nesting bound; mirrors repro.rpeq.parser.MAX_NESTING
_MAX_NESTING = 200


class _XPathParser:
    """Hand-rolled parser for the supported XPath fragment."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._pos = 0
        self._depth = 0

    def _peek(self, token: str) -> bool:
        return self._text.startswith(token, self._pos)

    def _eat(self, token: str) -> bool:
        if self._peek(token):
            self._pos += len(token)
            return True
        return False

    def _skip_space(self) -> None:
        while self._pos < len(self._text) and self._text[self._pos].isspace():
            self._pos += 1

    def _fail_unsupported(self, what: str) -> None:
        raise UnsupportedFeatureError(
            f"XPath construct {what!r} is outside the forward child/"
            f"descendant fragment with structural predicates "
            f"(offset {self._pos} in {self._text!r})"
        )

    def parse(self) -> Rpeq:
        expr = self.parse_path(absolute_ok=True)
        self._skip_space()
        if self._pos != len(self._text):
            raise QuerySyntaxError(
                f"trailing characters in XPath: {self._text[self._pos:]!r}",
                position=self._pos,
            )
        return expr

    def parse_path(self, absolute_ok: bool) -> Rpeq:
        """Parse a location path into an rpeq expression."""
        self._skip_space()
        parts: list[Rpeq] = []
        descend = False
        if self._eat("//"):
            descend = True
        elif self._eat("/"):
            if not absolute_ok:
                # A leading '/' in a predicate would be an absolute path;
                # the streamed model evaluates predicates relative to the
                # candidate node only.
                self._fail_unsupported("absolute path inside a predicate")
        while True:
            self._skip_space()
            if self._peek("parent::") or self._peek("ancestor::"):
                if descend:
                    self._fail_unsupported("'//' before a reverse axis")
                parts = self._rewrite_reverse_step(parts)
            else:
                parts.extend(self._parse_step(descend))
            self._skip_space()
            if self._eat("//"):
                descend = True
                continue
            if self._eat("/"):
                descend = False
                continue
            break
        if not parts and descend:
            # Bare '//' selects all descendants: '_*._' keeps it a step.
            parts.extend((Star(Label(WILDCARD)), Label(WILDCARD)))
        return _concat(parts)

    def _parse_step(self, descend: bool) -> list[Rpeq]:
        """One location step as a flat list of rpeq parts.

        A descendant step contributes ``[_*,  label[preds]]`` so the
        translation of ``/a//b`` is the idiomatic ``a._*.b`` (the XPath
        semantics binds predicates to the step's node test, which is why
        the qualifier wraps the label, not the ``_*`` prefix).
        """
        for axis in _UNSUPPORTED_AXES:
            if self._peek(axis):
                self._fail_unsupported(axis)
        if self._eat("@"):
            self._fail_unsupported("attribute step '@'")
        if self._eat("descendant-or-self::node()"):
            return [Star(Label(WILDCARD))]
        for axis, node_type in (("following::", Following), ("preceding::", Preceding)):
            if self._eat(axis):
                if self._eat("*"):
                    name = WILDCARD
                else:
                    match = _NAME.match(self._text, self._pos)
                    if not match:
                        raise QuerySyntaxError(
                            f"expected a name after {axis}", position=self._pos
                        )
                    self._pos = match.end()
                    name = match.group()
                step = self._parse_predicates(node_type(Label(name)))
                if descend:
                    self._fail_unsupported(f"'//{axis}' (descendant {axis} step)")
                return [step]
        explicit_descendant = self._eat("descendant::")
        if not explicit_descendant:
            self._eat("child::")
        if self._eat("self::node()") or self._eat("."):
            if descend or explicit_descendant:
                self._fail_unsupported("'//.' (descendant self step)")
            qualified = self._parse_predicates(None)
            return [] if qualified is None else [qualified]
        if self._eat("*"):
            name = WILDCARD
        else:
            match = _NAME.match(self._text, self._pos)
            if not match:
                raise QuerySyntaxError(
                    "expected a step name in XPath", position=self._pos
                )
            self._pos = match.end()
            name = match.group()
            if self._peek("("):
                self._fail_unsupported(f"function call {name}()")
        step = self._parse_predicates(Label(name))
        if descend or explicit_descendant:
            return [Star(Label(WILDCARD)), step]
        return [step]

    def _rewrite_reverse_step(self, parts: list[Rpeq]) -> list[Rpeq]:
        """Rewrite ``parent::``/``ancestor::`` into the forward fragment.

        The paper (Sec. II.2) notes that backward steps are expressible
        in the forward fragment, citing "XPath: Looking Forward".  The
        front-end implements the two canonical rewritings:

        * ``.../s/parent::l``   ->  ``...[s]``   — the parent of an
          ``s``-child *is* the previous step's node; the name test ``l``
          must be statically implied by that step (or be ``*``);
        * ``//s/ancestor::l``   ->  ``//l[.//s]`` — ancestors of an
          anywhere-``s`` are exactly the nodes with an ``s`` descendant.

        Anything outside these patterns raises
        :class:`~repro.errors.UnsupportedFeatureError` — the general
        rewriting is whole-query and lives upstream of this library.
        """
        if self._eat("parent::"):
            test = self._axis_name_test()
            if not parts:
                self._fail_unsupported("'parent::' with no preceding step")
            last = parts.pop()
            if parts:
                base = parts.pop()
            else:
                base = Empty()
            if test != WILDCARD and _core_label(base) != test:
                self._fail_unsupported(
                    f"'parent::{test}' where the parent step cannot be "
                    f"statically proven to be <{test}>"
                )
            step: Rpeq = Qualifier(base, last)
            step = self._parse_predicates(step)
            parts.append(step)
            return parts
        self._eat("ancestor::")
        test = self._axis_name_test()
        if (
            len(parts) != 2
            or parts[0] != Star(Label(WILDCARD))
            or isinstance(parts[1], Star)
        ):
            self._fail_unsupported(
                "'ancestor::' is supported only in the '//s/ancestor::l' "
                "form (general reverse-axis rewriting is whole-query)"
            )
        target = parts[1]
        label = Label(WILDCARD) if test == WILDCARD else Label(test)
        step = Qualifier(label, Concat(Star(Label(WILDCARD)), target))
        step = self._parse_predicates(step)
        return [Star(Label(WILDCARD)), step]

    def _axis_name_test(self) -> str:
        if self._eat("*"):
            return WILDCARD
        match = _NAME.match(self._text, self._pos)
        if not match:
            raise QuerySyntaxError(
                "expected a name after the reverse axis", position=self._pos
            )
        self._pos = match.end()
        return match.group()

    def _parse_predicates(self, step: Rpeq | None) -> Rpeq | None:
        while True:
            self._skip_space()
            if not self._eat("["):
                return step
            self._depth += 1
            if self._depth > _MAX_NESTING:
                raise QuerySyntaxError(
                    f"predicate nesting exceeds {_MAX_NESTING} levels",
                    position=self._pos,
                )
            conditions = self._parse_predicate_body()
            self._depth -= 1
            self._skip_space()
            if not self._eat("]"):
                raise QuerySyntaxError("missing ']' in XPath", position=self._pos)
            base = step if step is not None else Empty()
            for condition in conditions:
                base = Qualifier(base, condition)
            step = base

    def _parse_predicate_body(self) -> list[Rpeq]:
        """Structural boolean predicate.

        ``or`` and ``|`` become rpeq union; ``and`` becomes stacked
        qualifiers (``[p and q]`` == ``[p][q]``, hence the list return).
        Mixing ``and`` with ``or`` in one predicate is rejected — rpeq
        conditions are single paths, so ``(p and q) or r`` has no
        faithful translation without parenthesized boolean grouping.
        """
        paths = [self.parse_path(absolute_ok=False)]
        separators: list[str] = []
        while True:
            self._skip_space()
            if self._eat("|"):
                separators.append("or")
            elif self._text.startswith(("or ", "or\t"), self._pos):
                self._pos += 2
                separators.append("or")
            elif self._text.startswith(("and ", "and\t"), self._pos):
                self._pos += 3
                separators.append("and")
            else:
                break
            paths.append(self.parse_path(absolute_ok=False))
        for token in ("=", "<", ">", "not("):
            if self._peek(token):
                self._fail_unsupported(f"predicate operator {token.strip()!r}")
        kinds = set(separators)
        if kinds == {"or"}:
            expr = paths[0]
            for path in paths[1:]:
                expr = Union(expr, path)
            return [expr]
        if kinds == {"and"}:
            return paths
        if not kinds:
            return [paths[0]]
        self._fail_unsupported("mixed 'and'/'or' in one predicate")
        raise AssertionError("unreachable")


def _core_label(step: Rpeq) -> str | None:
    """The element label a step's results are guaranteed to carry.

    ``None`` when no single label is statically implied (wildcards,
    Kleene closures that may select the context node, unions, ...).
    """
    if isinstance(step, Label):
        return None if step.is_wildcard else step.name
    if isinstance(step, Qualifier):
        return _core_label(step.base)
    if isinstance(step, Plus):
        return None if step.label.is_wildcard else step.label.name
    if isinstance(step, (Following, Preceding)):
        return None if step.label.is_wildcard else step.label.name
    return None


def _concat(parts: list[Rpeq]) -> Rpeq:
    parts = [part for part in parts if not isinstance(part, Empty)]
    if not parts:
        return Empty()
    expr = parts[0]
    for part in parts[1:]:
        expr = Concat(expr, part)
    return expr


def xpath_to_rpeq(xpath: str) -> Rpeq:
    """Translate a forward-fragment XPath expression into an rpeq AST.

    Raises:
        UnsupportedFeatureError: for constructs outside the fragment.
        QuerySyntaxError: for malformed XPath.
    """
    return _XPathParser(xpath).parse()
