"""Rendering rpeq ASTs back to concrete syntax.

``parse(unparse(e)) == e`` holds for every AST (property-tested), which
makes query round-tripping usable for caching, logging and the multi-query
engine's deduplication.
"""

from __future__ import annotations

from ..errors import ReproError
from .ast import (
    Concat,
    Empty,
    Following,
    Label,
    OptionalExpr,
    Plus,
    Preceding,
    Qualifier,
    Rpeq,
    Star,
    Union,
)

# Binding strength used to decide where parentheses are required.
_PRECEDENCE = {
    Union: 1,
    Concat: 2,
    OptionalExpr: 3,
    Qualifier: 3,
    Plus: 3,
    Star: 3,
    Label: 4,
    Empty: 4,
    Following: 4,
    Preceding: 4,
}


def _render(expr: Rpeq, parent_level: int) -> str:
    level = _PRECEDENCE[type(expr)]
    if isinstance(expr, Empty):
        # Epsilon has no concrete spelling; '()' parses back to a grouped
        # empty expression only at top level, so render via '?'-free
        # equivalences where possible.  Standalone Empty renders as ''.
        text = ""
    elif isinstance(expr, Label):
        text = expr.name
    elif isinstance(expr, Following):
        text = f"following::{expr.label.name}"
    elif isinstance(expr, Preceding):
        text = f"preceding::{expr.label.name}"
    elif isinstance(expr, Plus):
        text = f"{_render(expr.label, level)}+"
    elif isinstance(expr, Star):
        text = f"{_render(expr.label, level)}*"
    elif isinstance(expr, OptionalExpr):
        text = f"{_render(expr.inner, level)}?"
    elif isinstance(expr, Qualifier):
        text = f"{_render(expr.base, level)}[{_render(expr.condition, 0)}]"
    elif isinstance(expr, (Concat, Union)):
        # Flatten the left spine iteratively: long chains are the common
        # case and would otherwise recurse once per element.  Only the
        # first spine element keeps the relaxed (left) parenthesization;
        # right-nested sub-chains stay parenthesized so the output
        # re-parses to the identical (left-associated) AST.
        separator = "." if isinstance(expr, Concat) else "|"
        cls = type(expr)
        parts: list[Rpeq] = []
        node: Rpeq = expr
        while isinstance(node, cls):
            parts.append(node.right)
            node = node.left
        parts.append(node)
        parts.reverse()
        rendered = [_render(parts[0], level)]
        rendered.extend(_render(part, level + 1) for part in parts[1:])
        text = separator.join(rendered)
    else:  # pragma: no cover - exhaustive over AST types
        raise ReproError(f"cannot unparse {type(expr).__name__}")
    if level < parent_level:
        return f"({text})"
    return text


def unparse(expr: Rpeq) -> str:
    """Return concrete rpeq syntax for an AST.

    The output re-parses to an equal AST.  Note that :class:`Empty` inside
    a larger expression cannot be spelled in the concrete grammar, so
    expressions containing bare ``Empty`` sub-terms (other than as the
    whole query) raise :class:`~repro.errors.ReproError`; the parser never
    produces such trees — they only arise from hand-built ASTs.
    """
    if isinstance(expr, Empty):
        return ""
    for node in expr.walk():
        if isinstance(node, Empty):
            raise ReproError(
                "epsilon has no concrete syntax inside a larger expression; "
                "rewrite with '?' (E|epsilon == E?)"
            )
    return _render(expr, 0)
