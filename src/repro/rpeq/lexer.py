"""Tokenizer for the rpeq concrete syntax.

Token kinds::

    NAME   element label (XML name characters) or the wildcard '_'
    DOT    .      step separator (concatenation)
    PIPE   |      union
    STAR   *      Kleene closure (postfix on a label)
    PLUS   +      positive closure (postfix on a label)
    QMARK  ?      optional (postfix)
    LPAR ( RPAR ) grouping
    LBRK [ RBRK ] qualifier brackets
    AXIS   ::     axis separator (following:: / preceding:: extension)
    END           end of input

Whitespace between tokens is ignored, so ``_* . a [ b ] . c`` and
``_*.a[b].c`` tokenize identically.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from ..errors import QuerySyntaxError

# NOTE: '.' is both the concatenation operator and a legal XML name
# character.  Like the paper's examples we treat '.' exclusively as the
# operator, so names are tokenized without dots.  The first character is
# any unicode letter or '_' (never a digit); XML names are unicode.
_NAME_RE = re.compile(r"[^\W\d][\w\-]*", re.UNICODE)

_PUNCT = {
    ".": "DOT",
    "|": "PIPE",
    "*": "STAR",
    "+": "PLUS",
    "?": "QMARK",
    "(": "LPAR",
    ")": "RPAR",
    "[": "LBRK",
    "]": "RBRK",
}


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token.

    Attributes:
        kind: one of the token kinds listed in the module docstring.
        text: the matched source text (empty for ``END``).
        position: character offset of the token in the query string.
    """

    kind: str
    text: str
    position: int


def tokenize(query: str) -> Iterator[Token]:
    """Yield the tokens of a query string, ending with an ``END`` token.

    Raises:
        QuerySyntaxError: on any character that starts no token.
    """
    index = 0
    length = len(query)
    while index < length:
        char = query[index]
        if char.isspace():
            index += 1
            continue
        if query.startswith("::", index):
            yield Token("AXIS", "::", index)
            index += 2
            continue
        if char in _PUNCT:
            yield Token(_PUNCT[char], char, index)
            index += 1
            continue
        match = _NAME_RE.match(query, index)
        if match:
            yield Token("NAME", match.group(), index)
            index = match.end()
            continue
        raise QuerySyntaxError(f"unexpected character {char!r}", position=index)
    yield Token("END", "", length)
