"""Semantics-preserving rpeq simplification.

Since the network degree is linear in the query size (Lemma V.1), every
construct removed before compilation is a transducer the stream never has
to pass through.  :func:`simplify` applies a fixpoint of local rewrites,
each justified by the declarative semantics (and property-tested against
the DOM oracle on random documents):

    epsilon . E            ->  E
    E . epsilon            ->  E
    (E | E)                ->  E              (set semantics)
    (E | epsilon)          ->  E?
    (E?)?                  ->  E?
    epsilon?               ->  epsilon
    (l*)? / (l+)?          ->  l*
    l* . l*                ->  l*             (i+j >= 0)
    l* . l+  /  l+ . l*    ->  l+             (i+j >= 1)
    (x | _)                ->  _              (wildcard absorbs, per kind)
    E[epsilon] / E[F?] / E[l*]  ->  E         (condition always true)
    E[F][F]                ->  E[F]

Qualifier conditions are simplified recursively; ``E[F]`` with ``F``
unsatisfiable is *not* reduced to the empty query here — emptiness needs
a schema (see :mod:`repro.dtd.analysis`).
"""

from __future__ import annotations

from .ast import (
    Concat,
    Empty,
    Label,
    OptionalExpr,
    Plus,
    Qualifier,
    Rpeq,
    Star,
    Union,
)


def always_nonempty(condition: Rpeq) -> bool:
    """Whether a qualifier condition is trivially true.

    Returns ``True`` for conditions that select at least the context node
    on *any* input document — e.g. ``epsilon``, ``l*``, ``E?`` — which
    makes the enclosing ``E[F]`` equivalent to plain ``E``.  Shared by
    :func:`simplify` (which removes such qualifiers) and the linter's
    ``RPQ001`` check, so the two can never disagree.
    """
    return _always_nonempty(condition)


def _always_nonempty(condition: Rpeq) -> bool:
    """Conditions that select at least the context node on any input."""
    if isinstance(condition, (Empty, Star, OptionalExpr)):
        return True
    if isinstance(condition, Union):
        return _always_nonempty(condition.left) or _always_nonempty(condition.right)
    if isinstance(condition, Qualifier):
        # E[F] with both parts trivially non-empty stays non-empty.
        return _always_nonempty(condition.base) and _always_nonempty(
            condition.condition
        )
    return False


def _simplify_once(expr: Rpeq) -> Rpeq:
    """One bottom-up pass of the rewrite rules."""
    if isinstance(expr, Concat):
        left = _simplify_once(expr.left)
        right = _simplify_once(expr.right)
        if isinstance(left, Empty):
            return right
        if isinstance(right, Empty):
            return left
        # closure fusion over the same label test — but never Plus.Plus,
        # which requires at least TWO steps and is not expressible as a
        # single closure
        if (
            isinstance(left, (Star, Plus))
            and isinstance(right, (Star, Plus))
            and left.label == right.label
            and not (isinstance(left, Plus) and isinstance(right, Plus))
        ):
            if isinstance(left, Star) and isinstance(right, Star):
                return Star(left.label)
            return Plus(left.label)
        return Concat(left, right)
    if isinstance(expr, Union):
        left = _simplify_once(expr.left)
        right = _simplify_once(expr.right)
        if left == right:
            return left
        if isinstance(left, Empty):
            return _simplify_once(OptionalExpr(right))
        if isinstance(right, Empty):
            return _simplify_once(OptionalExpr(left))
        # wildcard absorption within the same step kind
        for absorber, absorbed in ((left, right), (right, left)):
            if (
                isinstance(absorber, Label)
                and absorber.is_wildcard
                and isinstance(absorbed, Label)
            ):
                return absorber
            if (
                isinstance(absorber, Plus)
                and absorber.label.is_wildcard
                and isinstance(absorbed, Plus)
            ):
                return absorber
            if (
                isinstance(absorber, Star)
                and absorber.label.is_wildcard
                and isinstance(absorbed, Star)
            ):
                return absorber
        return Union(left, right)
    if isinstance(expr, OptionalExpr):
        inner = _simplify_once(expr.inner)
        if isinstance(inner, (Empty, OptionalExpr, Star)):
            return inner
        if isinstance(inner, Plus):
            return Star(inner.label)
        return OptionalExpr(inner)
    if isinstance(expr, Qualifier):
        base = _simplify_once(expr.base)
        condition = _simplify_once(expr.condition)
        if _always_nonempty(condition):
            return base
        if isinstance(base, Qualifier) and base.condition == condition:
            return base
        return Qualifier(base, condition)
    # Labels, closures, axes, Empty: leaves (closure labels are atomic).
    return expr


def simplify(expr: Rpeq, max_passes: int = 10) -> Rpeq:
    """Apply the rewrite rules to a fixpoint.

    The rules strictly shrink the AST, so the fixpoint is reached within
    a handful of passes; ``max_passes`` is a safety bound.
    """
    current = expr
    for _ in range(max_passes):
        simplified = _simplify_once(current)
        if simplified == current:
            return simplified
        current = simplified
    return current
