"""Recursive-descent parser for rpeq.

Operator precedence, loosest to tightest::

    union          E | E
    concatenation  E . E
    postfix        E?   E[F]   and, on labels only, E* / E+

The paper's grammar attaches ``*`` and ``+`` to labels only (general
expression closure would take the language beyond what the child/closure
transducer pair implements), and the parser enforces that: ``(a.b)+``
raises :class:`~repro.errors.UnsupportedFeatureError`.

The empty path ``epsilon`` has no concrete spelling; it arises from the
desugaring of ``?`` and ``*``.  As a convenience, an entirely empty query
string parses to :class:`~repro.rpeq.ast.Empty` (selecting the root).
"""

from __future__ import annotations

from ..errors import QuerySyntaxError, UnsupportedFeatureError
from .ast import (
    WILDCARD,
    Concat,
    Empty,
    Following,
    Label,
    OptionalExpr,
    Plus,
    Preceding,
    Qualifier,
    Rpeq,
    Star,
    Union,
)
from .lexer import Token, tokenize


#: Nesting bound for parentheses/qualifiers — generous for real queries,
#: small enough that pathological inputs fail with a clean syntax error
#: instead of exhausting the interpreter stack.
MAX_NESTING = 200


class _Parser:
    """Single-pass recursive-descent parser over a token list."""

    def __init__(self, query: str) -> None:
        self._tokens = list(tokenize(query))
        self._index = 0
        self._depth = 0

    def _enter(self, position: int) -> None:
        self._depth += 1
        if self._depth > MAX_NESTING:
            raise QuerySyntaxError(
                f"query nesting exceeds {MAX_NESTING} levels",
                position=position,
            )

    def _leave(self) -> None:
        self._depth -= 1

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._current
        if token.kind != kind:
            raise QuerySyntaxError(
                f"expected {kind}, found {token.text or 'end of query'!r}",
                position=token.position,
            )
        return self._advance()

    def parse(self) -> Rpeq:
        if self._current.kind == "END":
            return Empty()
        expr = self._union()
        if self._current.kind != "END":
            token = self._current
            raise QuerySyntaxError(
                f"unexpected {token.text!r} after expression", position=token.position
            )
        return expr

    def _union(self) -> Rpeq:
        expr = self._concat()
        while self._current.kind == "PIPE":
            self._advance()
            expr = Union(expr, self._concat())
        return expr

    def _concat(self) -> Rpeq:
        expr = self._postfix()
        while self._current.kind == "DOT":
            self._advance()
            expr = Concat(expr, self._postfix())
        return expr

    def _postfix(self) -> Rpeq:
        expr = self._atom()
        while True:
            kind = self._current.kind
            if kind == "QMARK":
                self._advance()
                expr = OptionalExpr(expr)
            elif kind == "LBRK":
                self._enter(self._current.position)
                self._advance()
                condition = self._union()
                self._expect("RBRK")
                self._leave()
                expr = Qualifier(expr, condition)
            elif kind in ("STAR", "PLUS"):
                token = self._advance()
                if not isinstance(expr, Label):
                    raise UnsupportedFeatureError(
                        f"closure '{token.text}' applies to labels only in the "
                        f"rpeq grammar (offset {token.position}); use e.g. "
                        f"'_*' or rewrite the query"
                    )
                expr = Plus(expr) if kind == "PLUS" else Star(expr)
            else:
                return expr

    def _atom(self) -> Rpeq:
        token = self._current
        if token.kind == "NAME":
            self._advance()
            if self._current.kind == "AXIS":
                return self._axis_step(token)
            return Label(token.text)
        if token.kind == "LPAR":
            self._enter(token.position)
            self._advance()
            expr = self._union()
            self._expect("RPAR")
            self._leave()
            return expr
        raise QuerySyntaxError(
            f"expected a label or '(', found {token.text or 'end of query'!r}",
            position=token.position,
        )

    def _axis_step(self, axis_token) -> Rpeq:
        """``axis::label`` steps — the XPath-style extended navigation.

        ``following``/``preceding`` are the prototype extensions of the
        paper's Sec. I; ``child`` and ``descendant`` are accepted as
        explicit spellings of the core steps.
        """
        self._advance()  # the '::'
        test_token = self._expect("NAME")
        test = Label(test_token.text)
        axis = axis_token.text
        if axis == "following":
            return Following(test)
        if axis == "preceding":
            return Preceding(test)
        if axis == "child":
            return test
        if axis == "descendant":
            return Concat(Star(Label(WILDCARD)), test)
        raise QuerySyntaxError(
            f"unknown axis {axis!r} (supported: child, descendant, "
            f"following, preceding)",
            position=axis_token.position,
        )


def parse(query: str) -> Rpeq:
    """Parse an rpeq query string into its AST.

    Examples::

        parse("_*.a[b].c")
        parse("a+.c+")
        parse("(province|state).city")

    Raises:
        QuerySyntaxError: on malformed input.
        UnsupportedFeatureError: for closure over non-label expressions.
    """
    return _Parser(query).parse()
