"""Deprecated alias for :mod:`repro.analysis.metrics`.

The structural query metrics historically lived here; they are now part
of the static-analysis subsystem in :mod:`repro.analysis`.  This module
remains so existing imports keep working, but the function entry points
emit :class:`DeprecationWarning` — import :func:`repro.analysis.analyze`
(or :mod:`repro.analysis.metrics`) instead.
"""

from __future__ import annotations

import warnings

from ..analysis.metrics import QueryProfile
from ..analysis.metrics import analyze as _analyze
from ..analysis.metrics import labels_used as _labels_used
from ..analysis.metrics import uses_wildcard as _uses_wildcard
from .ast import Rpeq

__all__ = ["QueryProfile", "analyze", "labels_used", "uses_wildcard"]


def _deprecated(name: str) -> None:
    warnings.warn(
        f"repro.rpeq.analysis.{name} is deprecated; "
        f"use repro.analysis.{name} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def analyze(expr: Rpeq) -> QueryProfile:
    """Deprecated alias for :func:`repro.analysis.metrics.analyze`."""
    _deprecated("analyze")
    return _analyze(expr)


def labels_used(expr: Rpeq) -> set[str]:
    """Deprecated alias for :func:`repro.analysis.metrics.labels_used`."""
    _deprecated("labels_used")
    return _labels_used(expr)


def uses_wildcard(expr: Rpeq) -> bool:
    """Deprecated alias for :func:`repro.analysis.metrics.uses_wildcard`."""
    _deprecated("uses_wildcard")
    return _uses_wildcard(expr)
