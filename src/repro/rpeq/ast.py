"""Abstract syntax for regular path expressions with qualifiers (rpeq).

The grammar (paper, Sec. II.2)::

    rpeq ::= epsilon | label | label* | label+ | (rpeq|rpeq)
           | (rpeq . rpeq) | rpeq? | rpeq [ rpeq ]

where ``label`` is an element name or the wildcard ``_`` matching every
label.  ``label*`` is sugar for ``(label+ | epsilon)`` and ``rpeq?`` for
``(rpeq | epsilon)``; both are kept as AST nodes so compilers can choose
whether to expand them.

AST nodes are immutable, hashable dataclasses.  The declarative semantics
(used by the DOM oracle in :mod:`repro.baselines.dom_eval`) evaluates an
expression relative to a context node ``u`` to a set of nodes:

* ``epsilon``       -> ``{u}``
* ``l``             -> children of ``u`` labeled ``l``
* ``l+``            -> nodes reachable from ``u`` by one or more child
  steps, every step labeled ``l`` (for the wildcard: all descendants)
* ``E1.E2``         -> image of ``E2`` over ``eval(E1, u)``
* ``E1|E2``         -> union
* ``E?``            -> ``{u} ∪ eval(E, u)``
* ``E1[E2]``        -> ``{v ∈ eval(E1,u) : eval(E2,v) ≠ ∅}``
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Iterator

#: The wildcard label ``_``; matches every element label.
WILDCARD = "_"


@dataclass(frozen=True, slots=True)
class Rpeq:
    """Base class of all rpeq AST nodes."""

    def children(self) -> tuple["Rpeq", ...]:
        """Immediate sub-expressions, for generic traversals."""
        return ()

    def walk(self) -> Iterator["Rpeq"]:
        """Yield this node and all sub-expressions, pre-order.

        Iterative, so arbitrarily long queries never exhaust the
        interpreter stack.
        """
        stack: list[Rpeq] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))


@dataclass(frozen=True, slots=True)
class Empty(Rpeq):
    """The empty path ``epsilon`` — selects the context node itself."""


@dataclass(frozen=True, slots=True)
class Label(Rpeq):
    """A single child step: ``a`` or the wildcard ``_``."""

    name: str

    def __post_init__(self) -> None:
        # Interned to match the parser's interned element labels, so the
        # per-event label test is an identity hit, not a char compare.
        object.__setattr__(self, "name", sys.intern(self.name))

    @property
    def is_wildcard(self) -> bool:
        return self.name == WILDCARD

    def matches(self, label: str) -> bool:
        """Whether this step's label test accepts an element label."""
        return self.is_wildcard or self.name == label


@dataclass(frozen=True, slots=True)
class Plus(Rpeq):
    """Positive closure of a label step: ``a+`` (one or more ``a`` steps)."""

    label: Label

    def children(self) -> tuple[Rpeq, ...]:
        return (self.label,)


@dataclass(frozen=True, slots=True)
class Star(Rpeq):
    """Kleene closure of a label step: ``a*`` == ``(a+ | epsilon)``."""

    label: Label

    def children(self) -> tuple[Rpeq, ...]:
        return (self.label,)


@dataclass(frozen=True, slots=True)
class Following(Rpeq):
    """The ``following::label`` step (prototype extension, paper Sec. I).

    Selects elements whose start tag appears after the context node's end
    tag — i.e. everything later in document order outside the context's
    subtree — filtered by the label test.
    """

    label: Label

    def children(self) -> tuple[Rpeq, ...]:
        return (self.label,)


@dataclass(frozen=True, slots=True)
class Preceding(Rpeq):
    """The ``preceding::label`` step (prototype extension, paper Sec. I).

    Selects elements whose end tag appears before the context node's
    start tag — everything earlier in document order that is not an
    ancestor — filtered by the label test.  Inherently non-progressive:
    matches can only be confirmed once a later context node appears, so
    candidates buffer until then (or until document end).
    """

    label: Label

    def children(self) -> tuple[Rpeq, ...]:
        return (self.label,)


@dataclass(frozen=True, slots=True)
class Concat(Rpeq):
    """Path concatenation ``E1.E2``."""

    left: Rpeq
    right: Rpeq

    def children(self) -> tuple[Rpeq, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, slots=True)
class Union(Rpeq):
    """Alternative paths ``(E1 | E2)``."""

    left: Rpeq
    right: Rpeq

    def children(self) -> tuple[Rpeq, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, slots=True)
class OptionalExpr(Rpeq):
    """Optional path ``E?`` == ``(E | epsilon)``."""

    inner: Rpeq

    def children(self) -> tuple[Rpeq, ...]:
        return (self.inner,)


@dataclass(frozen=True, slots=True)
class Qualifier(Rpeq):
    """A qualified expression ``E[F]``.

    Selects the nodes of ``E`` from which the qualifier path ``F`` reaches
    at least one node (existential semantics, as in XPath predicates).
    """

    base: Rpeq
    condition: Rpeq

    def children(self) -> tuple[Rpeq, ...]:
        return (self.base, self.condition)


def descendant_or_self() -> Star:
    """The ubiquitous ``_*`` prefix (any path, including the empty one)."""
    return Star(Label(WILDCARD))


def concat_all(parts: list[Rpeq]) -> Rpeq:
    """Left-fold a list of expressions into nested :class:`Concat` nodes.

    An empty list yields :class:`Empty`; a singleton is returned as-is.
    """
    if not parts:
        return Empty()
    expr = parts[0]
    for part in parts[1:]:
        expr = Concat(expr, part)
    return expr
