"""Regular path expressions with qualifiers (rpeq): AST, parsing, analysis.

The query language of the paper's Sec. II.2, with an XPath forward-fragment
front-end and tooling for analysis and random generation.
"""

from ..analysis.metrics import QueryProfile, analyze, labels_used, uses_wildcard
from .ast import (
    WILDCARD,
    Concat,
    Empty,
    Following,
    Label,
    OptionalExpr,
    Plus,
    Preceding,
    Qualifier,
    Rpeq,
    Star,
    Union,
    concat_all,
    descendant_or_self,
)
from .generate import GeneratorConfig, query_family, random_rpeq
from .lexer import Token, tokenize
from .parser import parse
from .rewrite import always_nonempty, simplify
from .unparse import unparse
from .xpath import xpath_to_rpeq

__all__ = [
    "Concat",
    "Empty",
    "Following",
    "GeneratorConfig",
    "Label",
    "OptionalExpr",
    "Plus",
    "Preceding",
    "Qualifier",
    "QueryProfile",
    "Rpeq",
    "Star",
    "Token",
    "Union",
    "WILDCARD",
    "always_nonempty",
    "analyze",
    "concat_all",
    "descendant_or_self",
    "labels_used",
    "parse",
    "query_family",
    "random_rpeq",
    "simplify",
    "tokenize",
    "unparse",
    "uses_wildcard",
    "xpath_to_rpeq",
]
