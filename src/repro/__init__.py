"""SPEX — streamed and progressive evaluation of regular path expressions
with qualifiers (rpeq) against XML streams.

Reproduction of: D. Olteanu, T. Kiesling, F. Bry, *An Evaluation of
Regular Path Expressions with Qualifiers against XML Streams*
(PMS-FB-2002-12 / ICDE 2003).

Quickstart::

    import repro

    for match in repro.SpexEngine("_*.a[b].c").run("<doc>...</doc>"):
        print(match.position, match.to_xml())

Public surface:

* :class:`SpexEngine` / :func:`evaluate` — the streaming engine.
* :func:`parse` / :func:`xpath_to_rpeq` — query front-ends.
* :mod:`repro.xmlstream` — event model, SAX parsing, serialization.
* :mod:`repro.baselines` — the in-memory comparison processors.
* :mod:`repro.workloads` — synthetic MONDIAL / WordNet / DMOZ generators.
* :mod:`repro.cq` — conjunctive queries over rpeq (paper Sec. VII).
"""

from .core.checkpoint import Checkpoint
from .core.engine import SpexEngine, evaluate
from .core.output_tx import Match
from .core.supervisor import (
    StallError,
    Supervisor,
    SupervisorConfig,
    SupervisorReport,
    supervise,
)
from .errors import (
    CheckpointError,
    CompilationError,
    EngineError,
    QuerySyntaxError,
    ReproError,
    ResourceLimitError,
    StreamError,
    UnsupportedFeatureError,
)
from .limits import ResourceLimits
from .rpeq.parser import parse
from .rpeq.xpath import xpath_to_rpeq
from .xmlstream.offsets import StreamCursor
from .xmlstream.recovery import ErrorRecord, ErrorReport, RecoveryPolicy

__version__ = "1.1.0"

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "CompilationError",
    "EngineError",
    "ErrorRecord",
    "ErrorReport",
    "Match",
    "QuerySyntaxError",
    "RecoveryPolicy",
    "ReproError",
    "ResourceLimitError",
    "ResourceLimits",
    "SpexEngine",
    "StallError",
    "StreamCursor",
    "StreamError",
    "Supervisor",
    "SupervisorConfig",
    "SupervisorReport",
    "UnsupportedFeatureError",
    "__version__",
    "evaluate",
    "parse",
    "supervise",
    "xpath_to_rpeq",
]
