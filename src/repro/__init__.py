"""SPEX — streamed and progressive evaluation of regular path expressions
with qualifiers (rpeq) against XML streams.

Reproduction of: D. Olteanu, T. Kiesling, F. Bry, *An Evaluation of
Regular Path Expressions with Qualifiers against XML Streams*
(PMS-FB-2002-12 / ICDE 2003).

Quickstart::

    import repro

    for match in repro.SpexEngine("_*.a[b].c").run("<doc>...</doc>"):
        print(match.position, match.to_xml())

Public surface:

* :class:`SpexEngine` / :func:`evaluate` — the streaming engine.
* :class:`MultiQueryEngine` — shared-pass SDI serving, with bulkhead
  isolation, circuit breakers, deadlines and admission control
  (:class:`ServingPolicy` / :class:`AdmissionPolicy`).
* :class:`ShardCoordinator` / :func:`serve_sharded` — crash-isolated
  multi-process serving: shard workers with supervised restart,
  heartbeats and poison-pill quarantine (:class:`ShardConfig`).
* :func:`parse` / :func:`xpath_to_rpeq` — query front-ends.
* :mod:`repro.xmlstream` — event model, SAX parsing, serialization.
* :mod:`repro.baselines` — the in-memory comparison processors.
* :mod:`repro.workloads` — synthetic MONDIAL / WordNet / DMOZ generators.
* :mod:`repro.cq` — conjunctive queries over rpeq (paper Sec. VII).
"""

from .core.checkpoint import Checkpoint
from .core.clock import SYSTEM_CLOCK, Clock, FakeClock, SystemClock
from .core.engine import SpexEngine, evaluate
from .core.multiquery import MultiQueryEngine
from .core.output_tx import Match
from .core.serving import (
    AdmissionDecision,
    AdmissionPolicy,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    QueryOutcome,
    ServingPolicy,
    ServingReport,
    classify_admission,
)
from .core.shards import (
    HeartbeatMonitor,
    ShardConfig,
    ShardCoordinator,
    ShardedResult,
    ShardEvent,
    partition_queries,
    serve_sharded,
)
from .core.supervisor import (
    StallError,
    Supervisor,
    SupervisorConfig,
    SupervisorReport,
    supervise,
)
from .errors import (
    AdmissionError,
    CheckpointError,
    CompilationError,
    DeadlineExceeded,
    EngineError,
    InputLimitError,
    QuerySyntaxError,
    ReproError,
    ResourceLimitError,
    StreamError,
    UnsupportedFeatureError,
)
from .limits import ResourceLimits
from .rpeq.parser import parse
from .rpeq.xpath import xpath_to_rpeq
from .xmlstream.offsets import StreamCursor
from .xmlstream.parser import ParserLimits
from .xmlstream.recovery import ErrorRecord, ErrorReport, RecoveryPolicy

__version__ = "1.1.0"

__all__ = [
    "AdmissionDecision",
    "AdmissionError",
    "AdmissionPolicy",
    "BreakerPolicy",
    "BreakerState",
    "Checkpoint",
    "CheckpointError",
    "CircuitBreaker",
    "Clock",
    "CompilationError",
    "DeadlineExceeded",
    "EngineError",
    "ErrorRecord",
    "ErrorReport",
    "FakeClock",
    "HeartbeatMonitor",
    "InputLimitError",
    "Match",
    "MultiQueryEngine",
    "ParserLimits",
    "QueryOutcome",
    "QuerySyntaxError",
    "RecoveryPolicy",
    "ReproError",
    "ResourceLimitError",
    "ResourceLimits",
    "SYSTEM_CLOCK",
    "ServingPolicy",
    "ServingReport",
    "ShardConfig",
    "ShardCoordinator",
    "ShardEvent",
    "ShardedResult",
    "SpexEngine",
    "StallError",
    "StreamCursor",
    "StreamError",
    "Supervisor",
    "SupervisorConfig",
    "SupervisorReport",
    "SystemClock",
    "UnsupportedFeatureError",
    "__version__",
    "classify_admission",
    "evaluate",
    "parse",
    "partition_queries",
    "serve_sharded",
    "supervise",
    "xpath_to_rpeq",
]
