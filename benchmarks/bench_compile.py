"""E7 — Lemma V.1: translation time and network degree linear in |query|.

The paper: each rpeq construct adds a constant number of transducers in
constant time, so both the degree of the network and the translation
time are linear in the query length n.  We compile a deterministic query
family of doubling length and assert both linearities.
"""

import pytest

from repro.core.compiler import compile_network
from repro.analysis import analyze
from repro.rpeq.generate import query_family

LENGTHS = [8, 16, 32, 64]


@pytest.mark.parametrize("steps", LENGTHS)
def test_compile_time(benchmark, steps):
    expr = query_family(steps, steps // 2)
    network, _ = benchmark(compile_network, expr)
    benchmark.extra_info["query_length"] = analyze(expr).length
    benchmark.extra_info["network_degree"] = network.degree


def test_degree_linear(benchmark):
    def degrees():
        return [
            compile_network(query_family(n, n // 2))[0].degree for n in LENGTHS
        ]

    values = benchmark.pedantic(degrees, rounds=1, iterations=1)
    benchmark.extra_info["degrees"] = dict(zip(LENGTHS, values))
    deltas = [b - a for a, b in zip(values, values[1:])]
    # Doubling the query doubles the added transducers: exact linearity.
    assert deltas[1] == 2 * deltas[0]
    assert deltas[2] == 2 * deltas[1]
