"""E4 — Theorem V.1: evaluation time linear in the stream size s.

The paper's complexity result: for fixed query and bounded depth,
``T_net = O(sigma * s)`` — doubling the stream doubles the time.  We run
one query of each fragment over random trees of doubling size and assert
the growth factor stays close to 2 (well below the 4x a quadratic
evaluator would show).
"""

import time

import pytest

from repro import SpexEngine
from repro.workloads.generators import random_tree

SIZES = [8_000, 16_000, 32_000]

QUERIES = {
    "plain": "_*.b.c",
    "qualifier": "_*.b[c].a",
    "union": "_*.(b|c).a",
}


def _events(size):
    return list(random_tree(seed=11, elements=size, max_depth=6))


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("fragment", sorted(QUERIES))
def test_time_vs_size(benchmark, fragment, size):
    events = _events(size)
    engine = SpexEngine(QUERIES[fragment], collect_events=False)
    count = benchmark.pedantic(
        lambda: engine.count(iter(events)), rounds=2, iterations=1
    )
    benchmark.extra_info["elements"] = size
    benchmark.extra_info["matches"] = count


def test_linearity_shape(benchmark):
    """Direct assertion on the scaling exponent."""
    engine = SpexEngine(QUERIES["qualifier"], collect_events=False)
    small = _events(8_000)
    large = _events(32_000)
    engine.count(iter(small))  # warm-up

    def measure() -> float:
        start = time.perf_counter()
        engine.count(iter(small))
        small_time = time.perf_counter() - start
        start = time.perf_counter()
        engine.count(iter(large))
        large_time = time.perf_counter() - start
        return large_time / small_time

    factor = benchmark.pedantic(measure, rounds=2, iterations=1)
    benchmark.extra_info["growth_factor_for_4x_data"] = round(factor, 2)
    # 4x the data: linear -> ~4, quadratic -> ~16.  Allow generous slack.
    assert factor < 8, f"super-linear scaling: 4x data took {factor:.1f}x time"
