"""E9 — many queries over one stream (the SDI scenario, Sec. I / VIII).

The XFilter/YFilter line of related work evaluates large subscription
sets per document; the paper's conclusion names multi-query processing
as SPEX's natural extension.  We measure the shared-pass multi-query
engine as the subscription count grows, plus the first-match
short-circuit of the boolean filtering mode.
"""

import random

import pytest

from repro.core.multiquery import MultiQueryEngine
from repro.workloads import mondial

QUERY_COUNTS = [4, 16, 64]


@pytest.fixture(scope="module")
def events():
    return list(mondial(seed=7, countries=40))


@pytest.fixture(scope="module")
def reference_totals(events):
    """Memoized per-subscription-count reference answers.

    The independent-network engine is the agreement oracle for the
    shared-network benchmark; computing it once per count keeps the
    oracle out of repeated per-variant setup cost.
    """
    cache: dict[int, int] = {}

    def total(count: int) -> int:
        if count not in cache:
            results = MultiQueryEngine(_subscriptions(count)).evaluate(iter(events))
            cache[count] = sum(len(v) for v in results.values())
        return cache[count]

    return total


def _subscriptions(count: int) -> dict[str, str]:
    """A deterministic family of distinct subscription queries."""
    rng = random.Random(99)
    labels = ["country", "province", "city", "name", "population", "religions"]
    queries = {}
    for index in range(count):
        a, b = rng.choice(labels), rng.choice(labels)
        queries[f"s{index}"] = f"_*.{a}.{b}" if index % 2 else f"_*.{a}[{b}]"
    return queries


@pytest.mark.parametrize("count", QUERY_COUNTS)
def test_full_evaluation(benchmark, events, count):
    engine = MultiQueryEngine(_subscriptions(count))

    def evaluate():
        return sum(len(v) for v in engine.evaluate(iter(events)).values())

    matches = benchmark.pedantic(evaluate, rounds=2, iterations=1)
    benchmark.extra_info["queries"] = count
    benchmark.extra_info["total_matches"] = matches


@pytest.mark.parametrize("count", QUERY_COUNTS)
def test_shared_network(benchmark, events, reference_totals, count):
    """The paper's multi-query future work: one network, shared prefixes.

    The subscription family shares the ``_*.<label>`` prefixes heavily,
    so the shared network is much smaller than N independent ones.
    """
    from repro.core.multiquery import SharedNetworkEngine

    engine = SharedNetworkEngine(_subscriptions(count))

    def evaluate():
        return sum(len(v) for v in engine.evaluate(iter(events)).values())

    matches = benchmark.pedantic(evaluate, rounds=2, iterations=1)
    benchmark.extra_info["queries"] = count
    benchmark.extra_info["total_matches"] = matches
    benchmark.extra_info["shared_degree"] = engine.network_degree()
    # Answers agree with the independent-network engine.
    assert matches == reference_totals(count)


@pytest.mark.parametrize("count", QUERY_COUNTS)
def test_boolean_filtering(benchmark, events, count):
    engine = MultiQueryEngine(_subscriptions(count))

    def filter_run():
        return sum(engine.filter_documents(iter(events)).values())

    matched = benchmark.pedantic(filter_run, rounds=2, iterations=1)
    benchmark.extra_info["queries"] = count
    benchmark.extra_info["matched_subscriptions"] = matched


def test_cost_scales_linearly_in_queries(benchmark):
    """Shared pass: N queries cost ~N single-query network passes."""
    import time

    events = list(mondial(seed=7, countries=30))

    def factor():
        times = []
        for count in (4, 16):
            engine = MultiQueryEngine(_subscriptions(count))
            engine.evaluate(iter(events))  # warm-up
            start = time.perf_counter()
            engine.evaluate(iter(events))
            times.append(time.perf_counter() - start)
        return times[1] / times[0]

    growth = benchmark.pedantic(factor, rounds=1, iterations=1)
    benchmark.extra_info["growth_for_4x_queries"] = round(growth, 2)
    assert growth < 8  # linear-ish in query count, not quadratic
