"""E11 (extension) — XMark-like auction workload.

Not in the paper: XMark was the community benchmark of the era, deeper
(depth 7) and more heterogeneous than the paper's three datasets, so it
stresses nested closure scopes and multi-level qualifiers harder.  We
run the four Sec. VI query classes plus two stress queries (a deep
closure-inside-closure and a doubly nested qualifier) on SPEX and the
materializing baselines.
"""

import pytest

from repro.bench.harness import make_processor
from repro.workloads.xmark import QUERIES, xmark

PROCESSORS = ["spex", "dom", "treegrep"]

_expected: dict[object, int] = {}


@pytest.fixture(scope="module")
def xmark_events():
    return list(xmark(seed=7, scale=400))


@pytest.mark.parametrize("processor", PROCESSORS)
@pytest.mark.parametrize("query_id", list(QUERIES))
def test_xmark(benchmark, xmark_events, query_id, processor):
    query = QUERIES[query_id]
    evaluate = make_processor(processor, query)
    count = benchmark.pedantic(
        lambda: evaluate(iter(xmark_events)), rounds=2, iterations=1
    )
    benchmark.extra_info["query"] = query
    benchmark.extra_info["matches"] = count
    benchmark.extra_info["messages"] = len(xmark_events)
    expected = _expected.setdefault(query_id, count)
    assert count == expected, (
        f"{processor} disagrees on {query_id!r}: {count} != {expected}"
    )


def test_axis_queries_stream(benchmark, xmark_events):
    """Axis extension on a realistic workload (SPEX only — the
    automaton baselines cannot express axes)."""
    from repro import SpexEngine

    engine = SpexEngine(
        "_*.open_auction[bidder].following::closed_auction", collect_events=False
    )
    count = benchmark.pedantic(
        lambda: engine.count(iter(xmark_events)), rounds=2, iterations=1
    )
    benchmark.extra_info["matches"] = count
    stats = engine.stats
    benchmark.extra_info["peak_stack"] = stats.network.max_stack
    assert stats.network.max_stack <= 8  # depth 7 + envelope
