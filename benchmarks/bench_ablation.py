"""E10 — ablations of design choices called out in DESIGN.md.

Three knobs, each measured against the same workload and asserted to
leave the answers unchanged:

* **Star fusion** — the fused ``DS(l*)`` transducer versus the paper's
  literal ``SP -> CL -> JO`` translation of Fig. 11;
* **Fragment collection** — buffering result fragments in the output
  transducer versus positions-only matching;
* **Join deduplication** — identity-dedup of branch-replicated messages
  at joins versus forwarding duplicates (correct but wasteful: the
  duplicates are absorbed by downstream disjunction normalization and
  first-wins determination).
"""

import pytest

from repro import SpexEngine
from repro.core.compiler import compile_network
from repro.core.flow_transducers import JoinTransducer
from repro.rpeq.parser import parse
from repro.workloads import wordnet

QUERY = "_*.Noun[wordForm].lexID"


@pytest.fixture(scope="module")
def events(wordnet_events):
    return wordnet_events


@pytest.fixture(scope="module")
def reference_count(events):
    """Reference answer, computed once for every ablation variant."""
    return SpexEngine(QUERY, collect_events=False).count(iter(events))


@pytest.mark.parametrize("optimize", [True, False], ids=["fused-star", "literal-fig11"])
def test_star_fusion(benchmark, events, reference_count, optimize):
    engine = SpexEngine(QUERY, collect_events=False, optimize=optimize)
    count = benchmark.pedantic(
        lambda: engine.count(iter(events)), rounds=2, iterations=1
    )
    benchmark.extra_info["network_degree"] = engine.network_degree()
    benchmark.extra_info["matches"] = count
    assert count == reference_count


@pytest.mark.parametrize("collect", [True, False], ids=["fragments", "positions-only"])
def test_fragment_collection(benchmark, events, collect):
    engine = SpexEngine(QUERY, collect_events=collect)
    count = benchmark.pedantic(
        lambda: sum(1 for _ in engine.run(iter(events))), rounds=2, iterations=1
    )
    benchmark.extra_info["matches"] = count
    benchmark.extra_info[
        "peak_buffered_events"
    ] = engine.stats.output.peak_buffered_events


@pytest.mark.parametrize("dedup", [True, False], ids=["join-dedup", "join-no-dedup"])
def test_join_dedup(benchmark, events, reference_count, dedup):
    expr = parse(QUERY)

    def evaluate():
        network, _store = compile_network(expr, collect_events=False, optimize=False)
        for node in network.nodes:
            if isinstance(node, JoinTransducer):
                node.dedup = dedup
        return sum(len(network.process_event(e)) for e in iter(events))

    count = benchmark.pedantic(evaluate, rounds=2, iterations=1)
    benchmark.extra_info["matches"] = count
    assert count == reference_count
