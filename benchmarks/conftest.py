"""Shared fixtures for the benchmark suite.

Workloads are materialized once per session (so timing measures the
evaluators, not the generators) at scales chosen to keep the full suite
around a couple of minutes.  Every bench prints/records the paper-shape
data via ``benchmark.extra_info`` and asserts the qualitative claims the
paper's narrative makes, so a silent regression in *shape* fails the
suite even when absolute numbers drift.
"""

from __future__ import annotations

import pytest

from repro.workloads import dmoz_content, dmoz_structure, mondial, wordnet

#: Scale factors versus the paper's datasets (documented in EXPERIMENTS.md).
MONDIAL_COUNTRIES = 200      # ≈ 10k elements   (paper: 24k)
WORDNET_NOUNS = 5_000        # ≈ 21k elements   (paper: 208k)
DMOZ_STRUCTURE_TOPICS = 12_000   # ≈ 42k elements (paper: 3.9M)
DMOZ_CONTENT_TOPICS = 24_000     # ≈ 140k elements (paper: 13.2M)


@pytest.fixture(scope="session")
def mondial_events():
    return list(mondial(seed=7, countries=MONDIAL_COUNTRIES))


@pytest.fixture(scope="session")
def wordnet_events():
    return list(wordnet(seed=7, nouns=WORDNET_NOUNS))


@pytest.fixture(scope="session")
def dmoz_structure_events():
    return list(dmoz_structure(seed=7, topics=DMOZ_STRUCTURE_TOPICS))


@pytest.fixture(scope="session")
def dmoz_content_events():
    return list(dmoz_content(seed=7, topics=DMOZ_CONTENT_TOPICS))
