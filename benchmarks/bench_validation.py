"""E12 (extension) — streaming DTD validation (Segoufin/Vianu, Sec. VIII).

Measures (a) standalone validation throughput, (b) the overhead of
validating *while* querying (the composed pipeline of
``examples/schema_pipeline.py``), and (c) that validator state is
bounded by the DTD, not the stream (lazy-DFA subset states stay
constant as the stream grows).
"""

import pytest

from repro import SpexEngine
from repro.dtd import DocumentGenerator, DtdValidator, parse_dtd

FEED_DTD = """
<!DOCTYPE feed [
  <!ELEMENT feed (order+)>
  <!ELEMENT order (customer, item+, rush?)>
  <!ELEMENT customer (name, region?)>
  <!ELEMENT item (sku, quantity)>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT region (#PCDATA)>
  <!ELEMENT sku (#PCDATA)>
  <!ELEMENT quantity (#PCDATA)>
  <!ELEMENT rush EMPTY>
]>
"""

QUERY = "_*.order[rush].item.sku"


@pytest.fixture(scope="module")
def feed_events():
    dtd = parse_dtd(FEED_DTD)
    generator = DocumentGenerator(dtd, seed=42, max_repeat=8)
    # One large valid document (~tens of thousands of events).
    events = []
    for seed in range(400):
        document = list(generator.events(seed=seed))
        if not events:
            events.extend(document[:2])  # <$> <feed>
        events.extend(document[2:-2])    # orders only
    events.extend(document[-2:])         # </feed> </$>
    return events


def test_validation_throughput(benchmark, feed_events):
    validator = DtdValidator(parse_dtd(FEED_DTD))
    count = benchmark.pedantic(
        lambda: sum(1 for _ in validator.stream(iter(feed_events))),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["messages"] = count


@pytest.mark.parametrize("validate", [False, True], ids=["query-only", "validate+query"])
def test_composed_pipeline_overhead(benchmark, feed_events, validate):
    engine = SpexEngine(QUERY, collect_events=False)
    validator = DtdValidator(parse_dtd(FEED_DTD))

    def run():
        source = iter(feed_events)
        if validate:
            source = validator.stream(source)
        return engine.count(source)

    matches = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["matches"] = matches
    benchmark.extra_info["messages"] = len(feed_events)


def test_validator_state_bounded(benchmark, feed_events):
    """Lazy-DFA subset states depend on the DTD, not the stream length."""
    validator = DtdValidator(parse_dtd(FEED_DTD))

    def run():
        for _ in validator.stream(iter(feed_events)):
            pass
        return sum(
            len(automaton._step_cache)
            for automaton in validator._automata.values()
        )

    subset_states = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["dfa_transitions_built"] = subset_states
    assert subset_states < 40
