"""E3 — Fig. 15: DMOZ structure + content, SPEX only, classes 1-4.

Paper setup: the Open Directory RDF files — structure (300 MB, 3.9M
elements) and content (1 GB, 13.2M elements), both depth 3.  Saxon and
Fxgrep could not run at all ("the memory consumption ... was beyond the
limitations of the system used"); SPEX processed both with a constant
8.5-11 MB footprint, times growing with file size (Fig. 15's bars:
content ≈ 3-4x structure, uniformly across query classes).

Here: the seeded DMOZ-like generators, scaled (see conftest) but with
the structure:content element ratio preserved.  Each cell records SPEX's
internal buffering peaks, asserting the constant-memory claim: buffered
events stay bounded by a small constant regardless of stream length.
"""

import pytest

from repro import SpexEngine
from repro.workloads.dmoz import QUERIES

FILES = ["structure", "content"]


@pytest.mark.parametrize("dmoz_file", FILES)
@pytest.mark.parametrize("query_class", sorted(QUERIES))
def test_dmoz(benchmark, request, dmoz_file, query_class):
    events = request.getfixturevalue(f"dmoz_{dmoz_file}_events")
    query = QUERIES[query_class]
    engine = SpexEngine(query, collect_events=True)

    def evaluate():
        return sum(1 for _ in engine.run(iter(events)))

    count = benchmark.pedantic(evaluate, rounds=2, iterations=1)
    stats = engine.stats
    benchmark.extra_info["query"] = query
    benchmark.extra_info["matches"] = count
    benchmark.extra_info["messages"] = len(events)
    benchmark.extra_info["peak_buffered_events"] = stats.output.peak_buffered_events
    benchmark.extra_info["peak_stack"] = stats.network.max_stack
    # The paper's headline: memory independent of document size.  Depth
    # is 3, so transducer stacks hold <= 4 entries; the output buffer
    # holds at most one topic's worth of events for classes 1/2/4.
    # Class 3 (_*._) matches the document's top element, whose result
    # fragment *is* the whole stream — the output transducer's admitted
    # worst case, linear in s (Lemma V.2, item 5).
    assert stats.network.max_stack <= 4
    if query_class == 3:
        assert stats.output.peak_buffered_events <= len(events)
    else:
        assert stats.output.peak_buffered_events <= 40
