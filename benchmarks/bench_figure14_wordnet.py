"""E2 — Fig. 14 (right): WordNet, query classes 1-4, three processors.

Paper setup: a WordNet RDF excerpt (9.5 MB, 207 899 elements, depth 3 —
flat and highly repetitive), same processors and query classes.  Paper
finding: SPEX "in most cases outperforms the other processors on the
medium-sized WordNet database" — the materializing processors pay for
building a 200k-node tree.

Here: the seeded WordNet-like generator (scaled).  Note the expected
deviation recorded in EXPERIMENTS.md: with all processors sharing one
Python interpreter, SPEX's per-message transducer dispatch costs more
than the baselines' tight materialization loops, so SPEX's *time* win on
WordNet does not reproduce at this scale — its memory win does (E8).
"""

import pytest

from repro.bench.harness import make_processor
from repro.workloads.wordnet import QUERIES

PROCESSORS = ["spex", "dom", "treegrep"]

_expected: dict[int, int] = {}


@pytest.mark.parametrize("processor", PROCESSORS)
@pytest.mark.parametrize("query_class", sorted(QUERIES))
def test_wordnet(benchmark, wordnet_events, query_class, processor):
    query = QUERIES[query_class]
    evaluate = make_processor(processor, query)
    count = benchmark.pedantic(
        lambda: evaluate(iter(wordnet_events)), rounds=3, iterations=1
    )
    benchmark.extra_info["query"] = query
    benchmark.extra_info["class"] = query_class
    benchmark.extra_info["matches"] = count
    benchmark.extra_info["messages"] = len(wordnet_events)
    expected = _expected.setdefault(query_class, count)
    assert count == expected, (
        f"{processor} disagrees on class {query_class}: {count} != {expected}"
    )
