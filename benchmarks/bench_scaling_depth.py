"""E5 — Sec. V: per-transducer memory bounded by the stream depth d.

The paper: a depth stack holds at most d entries; condition stacks at
most d formulas of size sigma — so transducer memory is O(d x sigma),
*independent of the stream length*.  We stream degenerate single-chain
documents of growing depth and assert the measured stack peak equals
d + 1 (the envelope) exactly, while time per message stays flat.
"""

import pytest

from repro import SpexEngine
from repro.workloads.generators import deep_chain

DEPTHS = [64, 256, 1024]


@pytest.mark.parametrize("depth", DEPTHS)
def test_stack_tracks_depth(benchmark, depth):
    engine = SpexEngine("_*.a[z]", collect_events=False)
    events = list(deep_chain(depth=depth, label="a", leaf_label="z"))

    count = benchmark.pedantic(
        lambda: engine.count(iter(events)), rounds=2, iterations=1
    )
    stats = engine.stats
    benchmark.extra_info["depth"] = depth
    benchmark.extra_info["max_stack"] = stats.network.max_stack
    benchmark.extra_info["matches"] = count
    # Exactly the bound of Sec. V: d (+1 envelope, +1 leaf level).
    assert stats.network.max_stack == depth + 2
    # The whole chain matches the qualifier (z is a descendant of every
    # a in the chain?  No: z is the direct child of the innermost a
    # only) — exactly one match.
    assert count == 1


@pytest.mark.parametrize("depth", DEPTHS)
def test_live_variables_bounded_by_depth(benchmark, depth):
    """One qualifier instance per nested activation: <= d live at once."""
    engine = SpexEngine("_*._[z]", collect_events=False)
    events = list(deep_chain(depth=depth, label="a", leaf_label="z"))
    benchmark.pedantic(lambda: engine.count(iter(events)), rounds=1, iterations=1)
    store = engine._last_store
    benchmark.extra_info["depth"] = depth
    benchmark.extra_info["peak_live_variables"] = store.peak_live_variables
    benchmark.extra_info["variables_created"] = store.total_variables
    assert store.peak_live_variables <= depth + 2
    assert len(store._states) == 0  # all released at document end
