"""E6 — Sec. V: condition formula size sigma across language fragments.

The paper's analysis:

* ``rpeq*``  (no qualifiers)        -> sigma == 1 (the constant 'true');
* ``rpeq[]`` (qualifiers, no closure) -> sigma <= min(n, d);
* ``rpeq*[]`` (wildcard closure + qualifiers) -> formulas accumulate
  disjunctions across nested closure scopes — sigma grows with the
  nesting depth (up to d^n in the adversarial case; Remark V.1's
  sequential case is Theta(sum n_i) <= d).

We reproduce the regimes on the nested-closure workload and record the
measured sigma per nesting depth.
"""

import pytest

from repro import SpexEngine
from repro.workloads.generators import deep_chain, nested_closure_workload

NEST_DEPTHS = [4, 8, 16]


@pytest.mark.parametrize("nest", NEST_DEPTHS)
def test_sigma_qualifier_free(benchmark, nest):
    engine = SpexEngine("_*.b", collect_events=False)
    events = list(nested_closure_workload(repetitions=4, nest_depth=nest))
    benchmark.pedantic(lambda: engine.count(iter(events)), rounds=2, iterations=1)
    sigma = engine.stats.network.max_formula_size
    benchmark.extra_info["nest_depth"] = nest
    benchmark.extra_info["sigma"] = sigma
    assert sigma == 1  # the rpeq* fragment needs no condition stacks


@pytest.mark.parametrize("nest", NEST_DEPTHS)
def test_sigma_qualifiers_without_closure(benchmark, nest):
    # Three child-step qualifiers: sigma bounded by n == 3, whatever the
    # document looks like.
    engine = SpexEngine("root.a[b].a[b].a[b]", collect_events=False)
    events = list(nested_closure_workload(repetitions=4, nest_depth=max(nest, 4)))
    benchmark.pedantic(lambda: engine.count(iter(events)), rounds=2, iterations=1)
    sigma = engine.stats.network.max_formula_size
    benchmark.extra_info["sigma"] = sigma
    assert sigma <= 3


@pytest.mark.parametrize("nest", NEST_DEPTHS)
def test_sigma_closure_with_qualifier_grows_with_depth(benchmark, nest):
    engine = SpexEngine("_*.a[b]._*.b", collect_events=False)
    events = list(nested_closure_workload(repetitions=2, nest_depth=nest))
    benchmark.pedantic(lambda: engine.count(iter(events)), rounds=2, iterations=1)
    sigma = engine.stats.network.max_formula_size
    benchmark.extra_info["nest_depth"] = nest
    benchmark.extra_info["sigma"] = sigma
    # One instance per nested <a>: disjunctions of up to ~nest variables.
    assert nest // 2 <= sigma <= 4 * nest + 4


def test_sigma_growth_series(benchmark):
    """The growth curve itself: sigma as a function of nesting depth.

    Per Sec. V, large formulas need a closure step *downstream* of a
    qualifier (the closure's nested scopes accumulate disjunctions of
    the qualifier's instance variables), hence the second ``_*``.
    """
    engine = SpexEngine("_*.a[b]._*.b", collect_events=False)

    def series():
        sigmas = []
        for nest in NEST_DEPTHS:
            events = nested_closure_workload(repetitions=1, nest_depth=nest)
            engine.count(events)
            sigmas.append(engine.stats.network.max_formula_size)
        return sigmas

    sigmas = benchmark.pedantic(series, rounds=1, iterations=1)
    benchmark.extra_info["sigma_series"] = dict(zip(NEST_DEPTHS, sigmas))
    assert sigmas == sorted(sigmas)  # monotone in depth
    assert sigmas[-1] > sigmas[0]
