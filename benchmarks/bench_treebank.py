"""E13 (extension) — Treebank-like deep recursion.

The Sec. V complexity story under realistic *deep* structure: depth
stacks track nesting (not stream length), recursive-clause closure
queries accumulate nested scopes, and qualifier formulas stay within
the σ ≤ d bound of Remark V.1.
"""

import pytest

from repro import SpexEngine
from repro.bench.harness import make_processor
from repro.workloads.treebank import QUERIES, treebank
from repro.xmlstream.stats import measure


@pytest.fixture(scope="module")
def treebank_events():
    return list(treebank(seed=7, sentences=400, max_depth=24))


@pytest.mark.parametrize("processor", ["spex", "dom", "treegrep"])
@pytest.mark.parametrize("query_id", [1, 2, 3, 4, "chains", "recursive"])
def test_treebank(benchmark, treebank_events, query_id, processor):
    query = QUERIES[query_id]
    evaluate = make_processor(processor, query)
    count = benchmark.pedantic(
        lambda: evaluate(iter(treebank_events)), rounds=2, iterations=1
    )
    benchmark.extra_info["query"] = query
    benchmark.extra_info["matches"] = count


def test_depth_behaviour(benchmark, treebank_events):
    """σ and stack peaks stay within the Sec. V bounds at real depth."""
    depth = measure(iter(treebank_events)).max_depth
    engine = SpexEngine("_*.S[VP]._*.NP", collect_events=False)

    def run():
        return engine.count(iter(treebank_events))

    count = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = engine.stats
    benchmark.extra_info["document_depth"] = depth
    benchmark.extra_info["max_stack"] = stats.network.max_stack
    benchmark.extra_info["sigma"] = stats.network.max_formula_size
    benchmark.extra_info["matches"] = count
    assert stats.network.max_stack <= depth + 1
    assert stats.network.max_formula_size <= depth  # Remark V.1: σ ≤ d
