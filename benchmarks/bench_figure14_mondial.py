"""E1 — Fig. 14 (left): MONDIAL, query classes 1-4, three processors.

Paper setup: the MONDIAL geography database (1.2 MB, 24 184 elements,
depth 5), queries of the four classes of Sec. VI, SPEX vs. Saxon vs.
Fxgrep.  Paper finding: "SPEX achieves a very competitive performance on
the smaller MONDIAL database" — all three processors within a small
factor of each other, with the materializing processors somewhat ahead
on the nested-result class 3.

Here: the seeded MONDIAL-like generator (scaled, see conftest), SPEX vs.
the DOM evaluator (Saxon analog) vs. the tree automaton (Fxgrep analog).
Every cell asserts that all processors report the same match count.
"""

import pytest

from repro.bench.harness import make_processor
from repro.workloads.mondial import QUERIES

PROCESSORS = ["spex", "dom", "treegrep"]

#: match counts per query class, computed once and shared for agreement
_expected: dict[int, int] = {}


@pytest.mark.parametrize("processor", PROCESSORS)
@pytest.mark.parametrize("query_class", sorted(QUERIES))
def test_mondial(benchmark, mondial_events, query_class, processor):
    query = QUERIES[query_class]
    evaluate = make_processor(processor, query)
    count = benchmark.pedantic(
        lambda: evaluate(iter(mondial_events)), rounds=3, iterations=1
    )
    benchmark.extra_info["query"] = query
    benchmark.extra_info["class"] = query_class
    benchmark.extra_info["matches"] = count
    benchmark.extra_info["messages"] = len(mondial_events)
    expected = _expected.setdefault(query_class, count)
    assert count == expected, (
        f"{processor} disagrees on class {query_class}: {count} != {expected}"
    )
