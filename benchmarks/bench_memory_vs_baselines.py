"""E8 — the paper's headline memory claim, quantified.

Sec. VI: "the memory consumption of both Saxon and Fxgrep was beyond the
limitations of the system used [on DMOZ]. In contrast, the SPEX prototype
uses a constant amount of memory (between 8.5 and 11 MB ...) for all of
the given queries and documents."

We trace peak Python allocation for SPEX versus the materializing
baselines on a DMOZ-like stream, and check the two shapes:

* the baselines' peak grows linearly with the stream;
* SPEX's peak is (a) far below the baselines and (b) essentially flat as
  the stream grows.
"""

import pytest

from repro.bench.harness import make_processor
from repro.bench.memory import traced
from repro.workloads import dmoz_structure

QUERY = "_*.Topic[editor].Title"
SIZES = [2_000, 8_000]


def _run_traced(processor, topics):
    evaluate = make_processor(processor, QUERY)
    events = dmoz_structure(seed=7, topics=topics)  # lazy: not prebuilt
    return traced(lambda: evaluate(events))


@pytest.mark.parametrize("topics", SIZES)
@pytest.mark.parametrize("processor", ["spex", "dom", "buffer-dom"])
def test_peak_memory(benchmark, processor, topics):
    run = benchmark.pedantic(
        lambda: _run_traced(processor, topics), rounds=1, iterations=1
    )
    benchmark.extra_info["topics"] = topics
    benchmark.extra_info["peak_mib"] = round(run.peak_mib, 2)
    benchmark.extra_info["matches"] = run.result


def test_memory_shape(benchmark):
    """The qualitative claim, asserted in one place."""

    def shape():
        spex_small = _run_traced("spex", SIZES[0]).peak_bytes
        spex_large = _run_traced("spex", SIZES[1]).peak_bytes
        dom_small = _run_traced("dom", SIZES[0]).peak_bytes
        dom_large = _run_traced("dom", SIZES[1]).peak_bytes
        return spex_small, spex_large, dom_small, dom_large

    spex_small, spex_large, dom_small, dom_large = benchmark.pedantic(
        shape, rounds=1, iterations=1
    )
    benchmark.extra_info["spex_mib"] = [
        round(spex_small / 2**20, 3), round(spex_large / 2**20, 3)
    ]
    benchmark.extra_info["dom_mib"] = [
        round(dom_small / 2**20, 3), round(dom_large / 2**20, 3)
    ]
    # The materializing baseline grows roughly linearly (4x data -> >2x).
    assert dom_large > 2 * dom_small
    # SPEX stays flat: 4x the data costs at most 50% more peak memory.
    assert spex_large < 1.5 * spex_small + 65_536
    # And SPEX is far below the materializer at the larger size.
    assert spex_large * 10 < dom_large
