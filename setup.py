"""Legacy setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` works in offline environments without the ``wheel``
package (legacy editable installs go through ``setup.py develop``).
"""

from setuptools import setup

setup()
