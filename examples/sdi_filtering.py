"""Selective dissemination of information (SDI) with many subscriptions.

The paper's motivating scenario (Sec. I): a stream of structured messages
must be filtered against the complex requirements of many subscribers
before dissemination.  Here, a feed of order documents is matched against
a set of subscription queries; each incoming document is routed to the
subscribers whose query it satisfies — using the XFilter-style boolean
matching mode, which short-circuits a subscription as soon as it matches.

Run with::

    python examples/sdi_filtering.py
"""

import random

from repro.core.multiquery import MultiQueryEngine
from repro.xmlstream import serialize
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    Text,
)

SUBSCRIPTIONS = {
    "all-orders": "_*.order",
    "rush-orders": "_*.order[rush]",
    "eu-books": "_*.order[region]._*.book.title",
    "bulk-anything": "_*.order[bulk].item",
}


def make_order(rng: random.Random):
    """One synthetic order document as an event list."""
    events = [StartDocument(), StartElement("order")]
    if rng.random() < 0.3:
        events += [StartElement("rush"), EndElement("rush")]
    if rng.random() < 0.5:
        events += [StartElement("region"), Text("EU"), EndElement("region")]
    if rng.random() < 0.2:
        events += [StartElement("bulk"), EndElement("bulk")]
    for _ in range(rng.randint(1, 4)):
        events.append(StartElement("item"))
        if rng.random() < 0.5:
            events += [
                StartElement("book"),
                StartElement("title"),
                Text("Data on the Web"),
                EndElement("title"),
                EndElement("book"),
            ]
        events.append(EndElement("item"))
    events += [EndElement("order"), EndDocument()]
    return events


def main() -> None:
    rng = random.Random(2002)
    engine = MultiQueryEngine(SUBSCRIPTIONS)
    print(f"{len(engine)} subscriptions registered:")
    for name, query in SUBSCRIPTIONS.items():
        print(f"  {name:14s} {query}")
    print()

    delivered: dict[str, int] = {name: 0 for name in SUBSCRIPTIONS}
    for doc_id in range(12):
        document = make_order(rng)
        matched = engine.filter_documents(iter(document))
        recipients = [name for name, hit in matched.items() if hit]
        for name in recipients:
            delivered[name] += 1
        print(f"document {doc_id:2d} -> {', '.join(recipients) or '(no subscriber)'}")
        if doc_id == 0:
            print(f"             {serialize(document)}")
    print()
    print("delivery totals:")
    for name, count in delivered.items():
        print(f"  {name:14s} {count}/12 documents")

    # --- full dissemination: fragments routed to subscriber callbacks --
    # (one shared-prefix network, progressive delivery, failure isolation)
    from repro.core.dispatch import Dispatcher

    print()
    print("dispatching fragments to subscriber callbacks:")
    dispatcher = Dispatcher()
    inbox: dict[str, list[str]] = {"rush": [], "books": []}
    dispatcher.subscribe("rush", "_*.order[rush]", lambda m: inbox["rush"].append(m.to_xml()))
    dispatcher.subscribe("books", "_*.book.title", lambda m: inbox["books"].append(m.text()))
    stream = (event for _ in range(6) for event in make_order(rng))
    report = dispatcher.dispatch(stream)
    print(f"  delivered: {report.delivered} (failures: {len(report.failures)})")
    print(f"  book titles seen: {inbox['books']}")


if __name__ == "__main__":
    main()
