"""Extended navigation and engine introspection.

Shows the prototype capabilities beyond the core rpeq language (paper
Sec. I): the ``following::`` and ``preceding::`` axes evaluated against a
stream, the shared-prefix multi-query network of the paper's conclusion,
and the transition-table tracer that reproduces the paper's Figs. 4/5/13.

Run with::

    python examples/extended_navigation.py
"""

from repro import SpexEngine
from repro.core.multiquery import SharedNetworkEngine
from repro.core.trace import trace_run

# A small change log: entries before/after a marker.
DOCUMENT = (
    "<log>"
    "<entry>old-1</entry>"
    "<entry>old-2</entry>"
    "<release/>"
    "<entry>new-1</entry>"
    "<entry>new-2</entry>"
    "</log>"
)


def main() -> None:
    print("document:", DOCUMENT)
    print()

    # --- following:: — everything after the release marker -----------
    query = "_*.release.following::entry"
    print(f"query: {query}")
    for match in SpexEngine(query).run(DOCUMENT):
        print(f"  -> {match.to_xml()}  (emitted as soon as the entry closed)")
    print()

    # --- preceding:: — everything before it ---------------------------
    query = "_*.release.preceding::entry"
    print(f"query: {query}")
    print("  (candidates buffer until the <release/> context appears)")
    for match in SpexEngine(query).run(DOCUMENT):
        print(f"  -> {match.to_xml()}")
    print()

    # --- axes inside qualifiers ---------------------------------------
    query = "_*.entry[preceding::release]"
    print(f"query: {query}  (entries preceded by a release)")
    print("  ->", [m.to_xml() for m in SpexEngine(query).run(DOCUMENT)])
    print()

    # --- shared-prefix multi-query network -----------------------------
    subscriptions = {
        "all entries": "_*.entry",
        "post-release": "_*.release.following::entry",
        "releases": "_*.release",
    }
    engine = SharedNetworkEngine(subscriptions)
    print(f"{len(engine)} subscriptions in one shared network "
          f"({engine.network_degree()} transducers):")
    for name, matches in engine.evaluate(DOCUMENT).items():
        print(f"  {name:13s} {len(matches)} match(es)")
    print()

    # --- the transition tracer -----------------------------------------
    print("transition table for 'a.c' over the paper's Fig. 1 document")
    print("(compare with the paper's Fig. 4):")
    print()
    print(trace_run("a.c", "<a><a><c/></a><b/><c/></a>"))


if __name__ == "__main__":
    main()
