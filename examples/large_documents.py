"""Streaming through documents too large to materialize (paper, Fig. 15).

The paper's headline demonstration: on the DMOZ files (300 MB / 1 GB),
Saxon and Fxgrep exhaust memory while SPEX streams through with a flat
footprint.  This example runs the four DMOZ query classes over a scaled
synthetic DMOZ structure file and contrasts SPEX's internal buffering
(constant) against what a materializing processor must hold (every
element).

Run with::

    python examples/large_documents.py [topics]

The default (20 000 topics ≈ 70k elements) keeps the demo under a
minute; pass a larger count to watch memory stay flat while runtime
scales linearly.
"""

import sys
import time

from repro import SpexEngine
from repro.bench import traced
from repro.workloads import dmoz_structure
from repro.workloads.dmoz import QUERIES
from repro.xmlstream import StreamStats, observed


def main() -> None:
    topics = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    print(f"DMOZ-like structure stream, {topics} topics")
    print()
    for class_id, query in QUERIES.items():
        engine = SpexEngine(query, collect_events=False)
        stats = StreamStats()
        stream = observed(dmoz_structure(seed=7, topics=topics), stats)
        start = time.perf_counter()
        run = traced(lambda: sum(1 for _ in engine.run(stream)))
        elapsed = time.perf_counter() - start
        engine_stats = engine.stats
        print(f"class {class_id}: {query}")
        print(
            f"  {run.result:>8d} matches over {stats.messages} messages "
            f"in {elapsed:.2f}s"
        )
        print(
            f"  peak python allocation {run.peak_mib:6.1f} MiB | "
            f"buffered events peak {engine_stats.output.peak_buffered_events} | "
            f"stack peak {engine_stats.network.max_stack}"
        )
    print()
    print(
        "A materializing processor must hold all "
        f"{stats.elements} elements (plus the tree overhead) before it can "
        "answer anything; SPEX's buffers above are bounded by the stream "
        "depth and the undecided candidates only."
    )


if __name__ == "__main__":
    main()
