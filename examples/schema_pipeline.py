"""A schema-aware streaming pipeline.

Combines the substrates around the SPEX core into the pipeline a
production deployment would run:

1. a **DTD** describes the feed;
2. **schema analysis** prunes subscriptions that can never match any
   valid document (dead-query detection);
3. the surviving subscriptions compile into **one shared-prefix
   network**;
4. incoming documents stream through the **validator** into the network —
   one pass, depth-bounded memory, progressive results.

Run with::

    python examples/schema_pipeline.py
"""

from repro.core.multiquery import SharedNetworkEngine
from repro.dtd import DocumentGenerator, DtdValidator, SchemaAnalyzer, parse_dtd

FEED_DTD = """
<!DOCTYPE feed [
  <!ELEMENT feed (order+)>
  <!ELEMENT order (customer, item+, rush?)>
  <!ELEMENT customer (name, region?)>
  <!ELEMENT item (sku, quantity)>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT region (#PCDATA)>
  <!ELEMENT sku (#PCDATA)>
  <!ELEMENT quantity (#PCDATA)>
  <!ELEMENT rush EMPTY>
]>
"""

SUBSCRIPTIONS = {
    "rush-orders": "_*.order[rush]",
    "items": "_*.order.item.sku",
    "regional": "_*.order[customer[region]]",
    "legacy-invoices": "_*.invoice.total",       # dead: no <invoice> in the DTD
    "misplaced-sku": "_*.customer.sku",          # dead: sku only under item
}


def main() -> None:
    dtd = parse_dtd(FEED_DTD)
    print(f"DTD: root <{dtd.root}>, {len(dtd.elements)} element types, "
          f"recursive={dtd.is_recursive()}, depth bound={dtd.depth_bound()}")
    print()

    # --- schema analysis prunes dead subscriptions ---------------------
    analyzer = SchemaAnalyzer(dtd)
    verdicts = analyzer.prune(SUBSCRIPTIONS)
    live = {name: q for name, q in SUBSCRIPTIONS.items() if verdicts[name]}
    for name, query in SUBSCRIPTIONS.items():
        state = "live" if verdicts[name] else "DEAD (pruned)"
        print(f"  {name:16s} {query:32s} {state}")
    print()

    # --- shared network over the survivors ------------------------------
    engine = SharedNetworkEngine(live)
    print(f"{len(live)} live subscriptions -> one network of "
          f"{engine.network_degree()} transducers")
    print()

    # --- validate-and-query in a single streaming pass -------------------
    validator = DtdValidator(dtd)
    generator = DocumentGenerator(dtd, seed=42, max_repeat=4)
    counts = {name: 0 for name in live}
    for name, _match in engine.run(validator.stream(generator.events())):
        counts[name] += 1
    print("matches in one generated feed document:")
    for name, count in counts.items():
        print(f"  {name:16s} {count}")
    print()

    # --- the validator rejects schema violations on the fly -------------
    from repro.dtd import DtdValidationError
    from repro.xmlstream import parse_string

    bad = "<feed><order><item><sku>1</sku><quantity>2</quantity></item></order></feed>"
    try:
        for _ in validator.stream(parse_string(bad)):
            pass
    except DtdValidationError as error:
        print(f"invalid document rejected mid-stream: {error}")


if __name__ == "__main__":
    main()
