"""Quickstart: evaluate regular path expressions against XML streams.

Runs the paper's running example (Sec. III.10): the query ``_*.a[b].c``
against the document of Fig. 1, then shows the XPath front-end and the
compiled transducer network.

Run with::

    python examples/quickstart.py
"""

from repro import SpexEngine, xpath_to_rpeq
from repro.rpeq import unparse

DOCUMENT = "<a><a><c/></a><b/><c/></a>"


def main() -> None:
    print("document:", DOCUMENT)
    print()

    # --- the paper's running example --------------------------------
    query = "_*.a[b].c"
    print(f"query: {query}")
    print("  (c elements below an a element that has a b child)")
    engine = SpexEngine(query)
    for match in engine.run(DOCUMENT):
        print(f"  match at position {match.position}: {match.to_xml()}")
    print()

    # --- results stream progressively --------------------------------
    # run() is a generator: each match is delivered as soon as the
    # stream prefix read so far decides it — no full-document buffering.
    print("progressive evaluation of '_*.c':")
    for match in SpexEngine("_*.c").run(DOCUMENT):
        print(f"  -> <{match.label}> at position {match.position}")
    print()

    # --- the XPath front-end ------------------------------------------
    xpath = "//a[b]/c"
    expr = xpath_to_rpeq(xpath)
    print(f"XPath {xpath!r} translates to rpeq {unparse(expr)!r}")
    print("  same results:", [m.position for m in SpexEngine(expr).run(DOCUMENT)])
    print()

    # --- what the query compiles to -----------------------------------
    print("compiled transducer network for '_*.a[b].c':")
    print(SpexEngine(query).describe_network())


if __name__ == "__main__":
    main()
