"""Checkpointing a long-running stream and resuming it losslessly.

The paper's complexity bounds (Theorems IV.2/V.2) are what make this
cheap: a run's entire evaluation state is the per-transducer stacks, the
condition store and the undecided-candidate buffer — kilobytes tagged
with a stream position, not the stream read so far.  This example shows
the full durability story in three acts:

1. run with a ``StreamCursor``, interrupt mid-stream, and write an
   atomic, checksummed ``Checkpoint`` to disk;
2. in a "fresh process" (a new engine built *from* the checkpoint),
   resume and prove the concatenated matches equal an uninterrupted run
   — zero duplicated, zero dropped;
3. hand the whole loop to ``repro.Supervisor``, which turns a flaky
   source's transient errors and stalls into retries around the same
   checkpoint boundary.

Run with::

    python examples/checkpoint_resume.py
"""

import itertools
import tempfile
from pathlib import Path

import repro
from repro.workloads import mondial
from repro.xmlstream import FlakySource

QUERY = "_*.country[province].name"
EVENTS = list(mondial(seed=42, countries=20))
CUT = len(EVENTS) // 3


def fingerprints(matches):
    return [(match.position, match.to_xml()) for match in matches]


def main() -> None:
    print(f"query: {QUERY}")
    print(f"stream: MONDIAL-like, {len(EVENTS)} events")

    # The ground truth: one uninterrupted run.
    baseline = fingerprints(repro.SpexEngine(QUERY).run(iter(EVENTS)))
    print(f"uninterrupted run: {len(baseline)} matches\n")

    # --- Act 1: interrupt mid-stream, checkpoint to disk -------------
    engine = repro.SpexEngine(QUERY)
    cursor = repro.StreamCursor()
    prefix = itertools.islice(iter(EVENTS), CUT)
    before = fingerprints(engine.run(prefix, cursor=cursor, require_end=False))
    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "checkpoint.json"
        engine.checkpoint().save(path)
        size = path.stat().st_size
        print(
            f"interrupted after event {CUT}: {len(before)} matches so far, "
            f"checkpoint is {size} bytes on disk"
        )

        # --- Act 2: a fresh engine resumes from the file -------------
        checkpoint = repro.Checkpoint.load(path)  # checksum-verified
        fresh = repro.SpexEngine.from_checkpoint(checkpoint)
        after = fingerprints(fresh.resume(checkpoint, iter(EVENTS)))
        print(f"resumed fresh engine: {len(after)} further matches")
        assert before + after == baseline
        print("before + after == uninterrupted: lossless\n")

    # --- Act 3: supervised run against a flaky source ----------------
    # Connection 1 drops after 100 events, connection 2 goes silent
    # after 300; the supervisor reconnects from its last checkpoint each
    # time, so the output is still exactly the baseline.
    source = FlakySource(
        EVENTS,
        script=[("error", 100), ("stall", 300)],
        stall_seconds=60.0,
    )
    engine = repro.SpexEngine(QUERY)
    supervisor = repro.Supervisor(
        engine,
        source,
        repro.SupervisorConfig(
            max_retries=5,
            backoff_initial=0.01,
            jitter=0.0,
            heartbeat_timeout=0.25,       # stall watchdog
            checkpoint_every_events=200,  # periodic cadence
        ),
    )
    supervised = fingerprints(supervisor.run())
    assert supervised == baseline
    report = supervisor.report
    print(
        f"supervised flaky run: {len(supervised)} matches "
        f"(== uninterrupted), {report.connects} connects, "
        f"{report.retries} retr{'y' if report.retries == 1 else 'ies'}, "
        f"{report.stalls} stall(s), "
        f"{report.checkpoints_written} checkpoint(s) taken"
    )
    print()
    print(engine.stats.summary())


if __name__ == "__main__":
    main()
