"""Conjunctive queries over regular path expressions (paper, Sec. VII).

The paper sketches how SPEX extends to conjunctive queries with
variables — a first step toward XPath/XQuery evaluation.  This example
runs the paper's own query

    q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3

(equivalent to the rpeq ``_*.a[b].c``) and then a multi-head query over
the synthetic MONDIAL geography database, showing per-variable sinks
delivering bindings progressively from one stream pass.

Run with::

    python examples/conjunctive_queries.py
"""

from repro import SpexEngine
from repro.cq import CqEngine
from repro.workloads import mondial

PAPER_DOC = "<a><a><c/></a><b/><c/></a>"


def main() -> None:
    # --- the paper's example, against the Fig. 1 document ------------
    cq = "q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3"
    print(f"conjunctive query: {cq}")
    bindings = CqEngine(cq).evaluate(PAPER_DOC)
    print("  X3 bindings:", [m.position for m in bindings["X3"]])
    print(
        "  rpeq equivalent '_*.a[b].c':",
        [m.position for m in SpexEngine("_*.a[b].c").run(PAPER_DOC)],
    )
    print()

    # --- a multi-head query over MONDIAL ------------------------------
    # Countries that have provinces, together with their names: the
    # network gets one output transducer (sink) per head variable.
    cq2 = (
        "geo(Country, Name) :- Root(_*.country) Country, "
        "Country(province) P, Country(name) Name"
    )
    print(f"multi-head query: {cq2}")
    engine = CqEngine(cq2, collect_events=False)
    counts = {"Country": 0, "Name": 0}
    for variable, _match in engine.run(mondial(seed=7, countries=60)):
        counts[variable] += 1
    print(f"  countries with provinces : {counts['Country']}")
    print(f"  their name elements      : {counts['Name']}")
    print()

    # --- a path that does not reach the head becomes a qualifier ------
    # P above never reaches a head variable, so the translation turns
    # 'Country(province) P' into the qualifier [province] — exactly the
    # rule of the paper's Fig. 16.
    check = SpexEngine("_*.country[province]", collect_events=False)
    expected = sum(1 for _ in check.run(mondial(seed=7, countries=60)))
    print(f"  cross-check with rpeq '_*.country[province]': {expected} countries")


if __name__ == "__main__":
    main()
