"""Querying an unbounded stream with bounded memory.

The paper's prototype "was tested also against application-generated
infinite streams and proved stable in cases where the depth of the tree
conveyed in the stream is bounded."  This example reproduces that: a
stock ticker that never ends is monitored for flagged trades
(``_*.trade[alert].price``) — a class-2 query whose qualifier is a
*future condition* (the alert can precede or follow the price inside a
trade, but the trade element must close before the candidate resolves).

Matches are reported live, and the engine's internal memory accounting is
printed periodically to show it stays flat while the number of processed
messages grows without bound.

Run with::

    python examples/infinite_monitoring.py
"""

import itertools

from repro import SpexEngine
from repro.workloads import stock_ticker

TRADES = 20_000
REPORT_EVERY = 5_000


def main() -> None:
    engine = SpexEngine("_*.trade[alert].price")
    # limit=TRADES makes the demo terminate, but note what the limit
    # does: the stream just stops mid-document — no closing tags are
    # ever seen, exactly like a live feed interrupted at an instant.
    stream = stock_ticker(seed=11, limit=TRADES)

    alerts = 0
    matches = engine.run(stream)
    for index in itertools.count(1):
        match = next(matches, None)
        if match is None:
            break
        alerts += 1
        if alerts <= 5:
            price = "".join(
                event.content
                for event in match.events
                if hasattr(event, "content")
            )
            print(f"alert #{alerts}: flagged trade, price {price}")
        if alerts % (REPORT_EVERY // 10) == 0:
            stats = engine.stats
            print(
                f"  [{stats.network.events:>7d} messages processed] "
                f"buffered events peak: {stats.output.peak_buffered_events}, "
                f"pending candidates peak: {stats.output.peak_pending_candidates}, "
                f"live condition vars: {stats.peak_live_variables} (peak)"
            )

    stats = engine.stats
    print()
    print(f"{alerts} alerts over {stats.network.events} stream messages")
    print("memory footprint stayed bounded:")
    print(f"  peak transducer stack height : {stats.network.max_stack} (= depth+1)")
    print(f"  peak buffered events         : {stats.output.peak_buffered_events}")
    print(f"  peak undetermined qualifiers : {stats.peak_live_variables}")
    print(f"  condition variables created  : {stats.condition_variables} (one per trade)")


if __name__ == "__main__":
    main()
