"""Client side of the network service: subscribe, produce, receive.

A self-contained tour of ``spex serve --listen``: the script starts an
in-process :class:`repro.service.SpexService` on an ephemeral port (so
it needs no running server), then speaks to it exactly the way a
remote client would —

1. a **subscriber** connection registers two rpeq queries and gets an
   admission verdict per query (``ADMIT000`` here);
2. a **producer** connection pushes a small multi-document stream;
3. the subscriber reads ``match`` frames as they arrive, each tagged
   with the query id and the global document index;
4. the service drains gracefully, flushing every committed match and
   saying goodbye with ``SVC007``.

Point :meth:`SubscriberClient.connect` at a real host/port to talk to
a ``spex serve --listen HOST:PORT`` process instead.

Run with::

    python examples/service_client.py
"""

import asyncio

from repro.service import (
    ProducerClient,
    ServiceConfig,
    SpexService,
    SubscriberClient,
)
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    Text,
)

SUBSCRIPTIONS = {
    "rush-orders": "_*.order[rush]",
    "all-skus": "_*.order._*.sku",
}


def order_document(sku: str, rush: bool) -> list:
    events = [StartDocument(), StartElement("order")]
    if rush:
        events += [StartElement("rush"), EndElement("rush")]
    events += [
        StartElement("item"),
        StartElement("sku"),
        Text(sku),
        EndElement("sku"),
        EndElement("item"),
        EndElement("order"),
        EndDocument(),
    ]
    return events


async def main() -> None:
    service = SpexService(ServiceConfig())
    host, port = await service.start()
    print(f"service listening on {host}:{port}")

    subscriber = await SubscriberClient.connect(host, port, tenant="demo")
    for query_id, query in SUBSCRIPTIONS.items():
        verdict = await subscriber.subscribe(query_id, query)
        print(f"subscribed {query_id!r}: {verdict['status']} [{verdict['code']}]")

    producer = await ProducerClient.connect(host, port, tenant="demo")
    documents = [
        order_document("A-100", rush=False),
        order_document("B-200", rush=True),
        order_document("C-300", rush=True),
    ]
    for document in documents:
        await producer.send_events(document)
    await producer.close()

    async def read_matches() -> None:
        async for frame in subscriber.frames():
            if frame.get("type") == "match":
                match = frame["match"]
                print(
                    f"document {frame['document']}: {frame['query_id']} "
                    f"matched <{match['label']}> at position "
                    f"{match['position']}"
                )
            elif frame.get("type") == "bye":
                print(f"server said goodbye: [{frame['code']}] {frame['reason']}")

    reading = asyncio.create_task(read_matches())
    # graceful drain: every committed match is flushed before the bye
    await service.stop()
    await reading
    await subscriber.close()
    print(f"documents ingested: {service.stats.documents_ingested}")


if __name__ == "__main__":
    asyncio.run(main())
